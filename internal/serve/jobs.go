package serve

// The jobs subsystem: long mining runs as durable, restartable server-side
// jobs. A query (POST /query) is bounded by a timeout and answers inline; a
// job (POST /jobs) runs without a deadline, checkpoints its exact search
// frontier to CheckpointDir every CheckpointEvery, and survives both a
// server Abort (SIGTERM writes a final snapshot through the engine's
// cancellation path) and a full process restart: POST /jobs/{id}/resume
// reloads the persisted spec + snapshot and continues with exactly-once
// counting. On-disk layout per job, all writes atomic (temp + rename):
//
//	<id>.job   the job spec (pattern, variant, limit) — written at creation
//	<id>.ckpt  the rolling snapshot — replaced at each checkpoint
//	<id>.done  the final result — written once on completion (.ckpt removed)

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ohminer"
)

// JobSpec is the persisted description of a job — everything needed to
// restart it after a crash. It is also the body of POST /jobs (plus the
// optional "id").
type JobSpec struct {
	// Pattern is the pattern literal, as in QueryRequest.
	Pattern string `json:"pattern"`
	// Variant selects the engine configuration by paper name.
	Variant string `json:"variant,omitempty"`
	// Limit stops the job after this many ordered embeddings (0 = the
	// server's MaxLimit, which may be unlimited).
	Limit uint64 `json:"limit,omitempty"`
	// DataAwareOrder derives the matching order from data selectivity.
	DataAwareOrder bool `json:"data_aware_order,omitempty"`
}

// jobCreateRequest is the body of POST /jobs.
type jobCreateRequest struct {
	// ID names the job (letters, digits, '-', '_'; ≤64 chars). Empty picks
	// a unique one.
	ID string `json:"id,omitempty"`
	JobSpec
}

// JobStatus is the JSON body of GET /jobs/{id} (and of the 202 responses).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // queued | running | done | failed | interrupted
	// Ordered is the embedding count so far: the last snapshot's count
	// while the job is running or interrupted, the final count once done.
	Ordered uint64 `json:"ordered,omitempty"`
	// CheckpointSeq numbers the freshest snapshot across all of the job's
	// runs (resumes continue the sequence).
	CheckpointSeq uint64 `json:"checkpoint_seq,omitempty"`
	// Checkpoints/CheckpointBytes/CheckpointErrors aggregate the engine's
	// snapshot accounting for the finished run.
	Checkpoints      uint64 `json:"checkpoints,omitempty"`
	CheckpointBytes  uint64 `json:"checkpoint_bytes,omitempty"`
	CheckpointErrors uint64 `json:"checkpoint_errors,omitempty"`
	// Resumes counts how often this job was resumed (this process).
	Resumes uint64         `json:"resumes,omitempty"`
	Result  *QueryResponse `json:"result,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// job is the in-memory state of one job in this process.
type job struct {
	id   string
	spec JobSpec

	mu      sync.Mutex
	state   string         // guarded by mu
	result  *QueryResponse // guarded by mu
	stats   ohminer.Stats  // guarded by mu
	seq     uint64         // guarded by mu
	ordered uint64         // guarded by mu
	resumes uint64         // guarded by mu
	errMsg  string         // guarded by mu
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state,
		Ordered:          j.ordered,
		CheckpointSeq:    j.seq,
		Checkpoints:      j.stats.Checkpoints,
		CheckpointBytes:  j.stats.CheckpointBytes,
		CheckpointErrors: j.stats.CheckpointErrors,
		Resumes:          j.resumes,
		Result:           j.result,
		Error:            j.errMsg,
	}
	if j.result != nil {
		st.Ordered = j.result.Ordered
	}
	return st
}

// validJobID accepts exactly the names that are safe as file stems: no
// separators, no dots, nothing a path traversal could smuggle through.
func validJobID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c == '-' || c == '_':
		case '0' <= c && c <= '9':
		case 'a' <= c && c <= 'z':
		case 'A' <= c && c <= 'Z':
		default:
			return false
		}
	}
	return true
}

func (s *Server) jobPath(id, ext string) string {
	return filepath.Join(s.cfg.CheckpointDir, id+ext)
}

// writeFileAtomic persists data at path via a temp file in the same
// directory plus rename — the same discipline the checkpoint sink uses, so
// a crash mid-write never leaves a half-written spec or result behind.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".job-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (s *Server) jobsEnabled(w http.ResponseWriter) bool {
	if s.cfg.CheckpointDir == "" {
		s.reject(w, http.StatusServiceUnavailable, "jobs disabled: server started without a checkpoint directory")
		return false
	}
	return true
}

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	if s.shedDegraded(w) {
		return
	}
	var req jobCreateRequest
	if err := decodeStrict(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Pattern == "" {
		s.reject(w, http.StatusBadRequest, "missing \"pattern\"")
		return
	}
	if _, err := ohminer.ParsePattern(req.Pattern); err != nil {
		s.reject(w, http.StatusBadRequest, "bad pattern: "+err.Error())
		return
	}
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("job-%d-%d", time.Now().UnixNano(), s.jobSeq.Add(1))
	}
	if !validJobID(id) {
		s.reject(w, http.StatusBadRequest, "bad job id: need 1-64 chars of [A-Za-z0-9_-]")
		return
	}

	s.jobsMu.Lock()
	if _, ok := s.jobs[id]; ok {
		s.jobsMu.Unlock()
		s.reject(w, http.StatusConflict, "job id already exists")
		return
	}
	if _, err := os.Stat(s.jobPath(id, ".job")); err == nil {
		s.jobsMu.Unlock()
		s.reject(w, http.StatusConflict, "job id already exists on disk (resume it instead)")
		return
	}
	spec, err := json.Marshal(req.JobSpec)
	if err == nil {
		err = writeFileAtomic(s.jobPath(id, ".job"), append(spec, '\n'))
	}
	if err != nil {
		s.jobsMu.Unlock()
		s.reject(w, http.StatusInternalServerError, "persist job spec: "+err.Error())
		return
	}
	j := &job{id: id, spec: req.JobSpec, state: "queued"}
	s.jobs[id] = j
	s.jobsMu.Unlock()

	s.jobsStarted.Add(1)
	s.jobWG.Add(1)
	go s.runJob(j, nil)
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleJobList answers GET /jobs: one summary row per job this server
// knows about — live jobs in this process, plus jobs a previous process left
// behind in CheckpointDir (their state reconstructed from the .job/.done
// files exactly as GET /jobs/{id} would). Sorted by id for stable output.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	statuses := map[string]JobStatus{}
	s.jobsMu.Lock()
	live := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		live = append(live, j)
	}
	s.jobsMu.Unlock()
	for _, j := range live {
		statuses[j.id] = j.status()
	}
	entries, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		s.reject(w, http.StatusInternalServerError, "scan checkpoint dir: "+err.Error())
		return
	}
	for _, e := range entries {
		name := e.Name()
		ext := filepath.Ext(name)
		if ext != ".job" && ext != ".done" {
			continue
		}
		id := name[:len(name)-len(ext)]
		if !validJobID(id) {
			continue
		}
		if _, ok := statuses[id]; ok {
			continue
		}
		st, err := s.diskJobStatus(id)
		if err != nil {
			continue
		}
		statuses[id] = st
	}
	ids := make([]string, 0, len(statuses))
	for id := range statuses {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		out = append(out, statuses[id])
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	if !validJobID(id) {
		s.reject(w, http.StatusBadRequest, "bad job id")
		return
	}
	s.jobsMu.Lock()
	j, ok := s.jobs[id]
	s.jobsMu.Unlock()
	if ok {
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	st, err := s.diskJobStatus(id)
	if err != nil {
		s.reject(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// diskJobStatus reconstructs a job's state purely from CheckpointDir — the
// view a freshly restarted server has before any resume.
func (s *Server) diskJobStatus(id string) (JobStatus, error) {
	if data, err := os.ReadFile(s.jobPath(id, ".done")); err == nil {
		var res QueryResponse
		if err := json.Unmarshal(data, &res); err != nil {
			return JobStatus{}, fmt.Errorf("job %s: corrupt result file: %v", id, err)
		}
		return JobStatus{ID: id, State: "done", Ordered: res.Ordered, Result: &res}, nil
	}
	if _, err := os.Stat(s.jobPath(id, ".job")); err != nil {
		return JobStatus{}, fmt.Errorf("unknown job %q", id)
	}
	st := JobStatus{ID: id, State: "interrupted"}
	if snap, err := ohminer.ReadCheckpoint(s.jobPath(id, ".ckpt")); err == nil {
		st.Ordered = snap.Ordered
		st.CheckpointSeq = snap.Seq
	} else if !errors.Is(err, os.ErrNotExist) {
		st.Error = "snapshot unusable: " + err.Error()
	}
	return st, nil
}

func (s *Server) handleJobResume(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	if s.shedDegraded(w) {
		return
	}
	id := r.PathValue("id")
	if !validJobID(id) {
		s.reject(w, http.StatusBadRequest, "bad job id")
		return
	}

	s.jobsMu.Lock()
	if j, ok := s.jobs[id]; ok {
		st := j.status()
		if st.State == "queued" || st.State == "running" {
			s.jobsMu.Unlock()
			s.reject(w, http.StatusConflict, "job is already "+st.State)
			return
		}
		if st.State == "done" {
			s.jobsMu.Unlock()
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	s.jobsMu.Unlock()

	if data, err := os.ReadFile(s.jobPath(id, ".done")); err == nil {
		// Completed in an earlier process: resume is an idempotent no-op.
		var res QueryResponse
		if err := json.Unmarshal(data, &res); err == nil {
			writeJSON(w, http.StatusOK, JobStatus{ID: id, State: "done", Ordered: res.Ordered, Result: &res})
			return
		}
	}
	specData, err := os.ReadFile(s.jobPath(id, ".job"))
	if err != nil {
		s.reject(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	var spec JobSpec
	if err := json.Unmarshal(specData, &spec); err != nil {
		s.reject(w, http.StatusInternalServerError, "corrupt job spec: "+err.Error())
		return
	}
	var snap *ohminer.CheckpointSnapshot
	switch snap, err = ohminer.ReadCheckpoint(s.jobPath(id, ".ckpt")); {
	case err == nil:
	case errors.Is(err, os.ErrNotExist):
		snap = nil // crashed before the first checkpoint: start over
	default:
		// A corrupt snapshot is refused, not silently restarted: the
		// operator decides whether to delete it and redo the work.
		s.reject(w, http.StatusUnprocessableEntity, "snapshot unusable: "+err.Error())
		return
	}

	s.jobsMu.Lock()
	if j, ok := s.jobs[id]; ok {
		if st := j.state; st == "queued" || st == "running" {
			s.jobsMu.Unlock()
			s.reject(w, http.StatusConflict, "job is already "+st)
			return
		}
	}
	j := &job{id: id, spec: spec, state: "queued", resumes: 1}
	if prev, ok := s.jobs[id]; ok {
		prev.mu.Lock()
		j.resumes = prev.resumes + 1
		prev.mu.Unlock()
	}
	if snap != nil {
		j.seq = snap.Seq
		j.ordered = snap.Ordered
	}
	s.jobs[id] = j
	s.jobsMu.Unlock()

	s.jobsResumed.Add(1)
	s.jobWG.Add(1)
	go s.runJob(j, snap)
	writeJSON(w, http.StatusAccepted, j.status())
}

// runJob executes one job to its next boundary: completion, failure, or
// interruption (server Abort → the engine's cancellation path, which writes
// a final snapshot so the job stays resumable).
func (s *Server) runJob(j *job, snap *ohminer.CheckpointSnapshot) {
	defer s.jobWG.Done()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopWatch := context.AfterFunc(s.abortCtx, cancel)
	defer stopWatch()

	fail := func(msg string) {
		j.mu.Lock()
		j.state = "failed"
		j.errMsg = msg
		j.mu.Unlock()
	}

	// Jobs respect the same admission semaphore as queries — a restarted
	// server with many resumed jobs must not stampede the CPU.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		j.mu.Lock()
		j.state = "interrupted"
		j.errMsg = "interrupted while queued; resume to continue"
		j.mu.Unlock()
		return
	}
	defer func() { <-s.sem }()

	p, err := ohminer.ParsePattern(j.spec.Pattern)
	if err != nil {
		fail("bad pattern: " + err.Error())
		return
	}
	limit := j.spec.Limit
	if s.cfg.MaxLimit > 0 && (limit == 0 || limit > s.cfg.MaxLimit) {
		limit = s.cfg.MaxLimit
	}
	opts := []ohminer.Option{
		ohminer.WithWorkers(s.cfg.Workers),
		ohminer.WithLimit(limit),
		ohminer.WithCheckpoint(ohminer.NewCheckpointFileSink(s.jobPath(j.id, ".ckpt")), s.cfg.CheckpointEvery),
	}
	if j.spec.Variant != "" {
		opts = append(opts, ohminer.WithVariant(j.spec.Variant))
	}
	if s.cfg.debugOnEmbedding != nil {
		opts = append(opts, ohminer.WithEmbeddings(s.cfg.debugOnEmbedding))
	}
	if j.spec.DataAwareOrder {
		opts = append(opts, ohminer.WithDataAwareOrder())
	}

	j.mu.Lock()
	j.state = "running"
	j.mu.Unlock()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	var res ohminer.Result
	if snap != nil {
		res, err = s.sess.ResumeContext(ctx, p, snap, opts...)
	} else {
		res, err = s.sess.MineContext(ctx, p, opts...)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	j.stats = res.Stats
	j.ordered = res.Ordered
	j.seq += res.Stats.Checkpoints
	switch {
	case ctx.Err() != nil:
		// Abort mid-run: the engine snapshotted the frontier on the way
		// out, so the job resumes (here or after a restart) exactly where
		// it stopped.
		j.state = "interrupted"
		j.errMsg = "interrupted by server shutdown; resume to continue"
	case err != nil:
		j.state = "failed"
		j.errMsg = err.Error()
	default:
		out := &QueryResponse{
			Ordered:       res.Ordered,
			Unique:        res.Unique,
			Automorphisms: res.Automorphisms,
			Truncated:     res.Truncated,
			ElapsedMS:     float64(res.Elapsed) / float64(time.Millisecond),
		}
		data, merr := json.Marshal(out)
		if merr == nil {
			merr = writeFileAtomic(s.jobPath(j.id, ".done"), append(data, '\n'))
		}
		if merr != nil {
			j.state = "failed"
			j.errMsg = "persist result: " + merr.Error()
			return
		}
		j.state = "done"
		j.result = out
		// The rolling snapshot has served its purpose; stray files would
		// only confuse a later resume.
		os.Remove(s.jobPath(j.id, ".ckpt"))
	}
}

// DrainJobs aborts nothing by itself: call Abort first, then DrainJobs to
// wait (bounded by ctx) until every job goroutine has unwound through the
// engine's cancellation path and written its final snapshot. Returns nil
// when all jobs drained, ctx.Err() otherwise.
func (s *Server) DrainJobs(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
