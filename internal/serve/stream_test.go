package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ohminer"
)

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestStreamLifecycle drives the full HTTP surface: create, register a
// standing query (plus an isomorphic duplicate), feed sequenced batches
// with retires, replay one idempotently, and check the inline deltas sum to
// the stream's total.
func TestStreamLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, Config{StreamDir: dir, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/streams", `{"id": "s1", "num_vertices": 10}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	// Duplicate create refused.
	resp, _ = postJSON(t, ts.URL+"/streams", `{"id": "s1", "num_vertices": 10}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("dup create: %d", resp.StatusCode)
	}

	resp, body = postJSON(t, ts.URL+"/streams/s1/queries", `{"pattern": "0 1; 1 2"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var q ohminer.StreamQueryInfo
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	// Isomorphic literal: same standing query, 200 not 201.
	resp, body = postJSON(t, ts.URL+"/streams/s1/queries", `{"pattern": "5 3; 3 8"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("isomorphic register: %d %s", resp.StatusCode, body)
	}
	var q2 ohminer.StreamQueryInfo
	if err := json.Unmarshal(body, &q2); err != nil {
		t.Fatal(err)
	}
	if !q2.Existing || q2.ID != q.ID {
		t.Fatalf("not deduped: %+v vs %+v", q, q2)
	}

	feed := []string{
		`{"seq": 1, "add": [[0,1],[1,2]]}`,
		`{"seq": 2, "add": [[2,3],[3,4]]}`,
		`{"seq": 3, "add": [[4,5]], "retire": [[0,1]]}`,
	}
	var cum int64
	for i, b := range feed {
		resp, body = postJSON(t, ts.URL+"/streams/s1/batches", b)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i+1, resp.StatusCode, body)
		}
		var br StreamBatchResponse
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatal(err)
		}
		if !br.Applied || len(br.Deltas) != 1 {
			t.Fatalf("batch %d: %+v", i+1, br)
		}
		cum += int64(br.Deltas[0].Added) - int64(br.Deltas[0].Retired)
	}

	// Replay of seq 2 is acked but not recounted.
	resp, body = postJSON(t, ts.URL+"/streams/s1/batches", feed[1])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d %s", resp.StatusCode, body)
	}
	var br StreamBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Applied {
		t.Fatal("replayed batch reported applied")
	}
	// A gapping seq is refused.
	resp, _ = postJSON(t, ts.URL+"/streams/s1/batches", `{"seq": 9, "add": [[6,7]]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("gap: %d", resp.StatusCode)
	}

	var status StreamStatus
	getJSON(t, ts.URL+"/streams/s1", &status)
	if status.Epoch != 3 || len(status.Queries) != 1 {
		t.Fatalf("status: %+v", status)
	}
	if int64(status.Queries[0].Total) != cum {
		t.Fatalf("deltas sum %d, total %d", cum, status.Queries[0].Total)
	}
}

// TestStreamLongPoll: the poll fallback backfills from the ring and waits
// for fresh events.
func TestStreamLongPoll(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, Config{StreamDir: dir, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/streams", `{"id": "lp", "num_vertices": 8}`)
	_, body := postJSON(t, ts.URL+"/streams/lp/queries", `{"pattern": "0 1; 1 2"}`)
	var q ohminer.StreamQueryInfo
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/streams/lp/batches", `{"seq": 1, "add": [[0,1],[1,2]]}`)
	postJSON(t, ts.URL+"/streams/lp/batches", `{"seq": 2, "add": [[2,3]]}`)

	events := fmt.Sprintf("%s/streams/lp/queries/%d/events", ts.URL, q.ID)

	// Backfill: both past events, immediately.
	var env streamEventsEnvelope
	getJSON(t, events+"?poll=1&after=0&wait_ms=100", &env)
	if len(env.Events) != 2 || env.Events[0].Seq != 1 || env.Events[1].Seq != 2 {
		t.Fatalf("backfill: %+v", env)
	}
	// Nothing new after seq 2: empty answer after the wait.
	getJSON(t, events+"?poll=1&after=2&wait_ms=50", &env)
	if len(env.Events) != 0 {
		t.Fatalf("expected empty poll, got %+v", env)
	}
	// A waiter parked before the batch arrives gets it pushed.
	done := make(chan streamEventsEnvelope, 1)
	go func() {
		var e streamEventsEnvelope
		getJSON(t, events+"?poll=1&after=2&wait_ms=5000", &e)
		done <- e
	}()
	time.Sleep(50 * time.Millisecond)
	postJSON(t, ts.URL+"/streams/lp/batches", `{"seq": 3, "add": [[3,4]]}`)
	select {
	case e := <-done:
		if len(e.Events) != 1 || e.Events[0].Seq != 3 {
			t.Fatalf("pushed poll: %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never returned")
	}
}

// TestStreamSSE: events arrive over an SSE connection as they are applied,
// with ids carrying the per-query seq.
func TestStreamSSE(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, Config{StreamDir: dir, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/streams", `{"id": "sse", "num_vertices": 8}`)
	_, body := postJSON(t, ts.URL+"/streams/sse/queries", `{"pattern": "0 1; 1 2"}`)
	var q ohminer.StreamQueryInfo
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/streams/sse/batches", `{"seq": 1, "add": [[0,1],[1,2]]}`)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		fmt.Sprintf("%s/streams/sse/queries/%d/events?after=0", ts.URL, q.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Feed a second batch while subscribed.
	go func() {
		time.Sleep(50 * time.Millisecond)
		postJSON(t, ts.URL+"/streams/sse/batches", `{"seq": 2, "add": [[2,3]]}`)
	}()

	// Expect the backfilled event 1 then the live event 2.
	sc := bufio.NewScanner(resp.Body)
	var deltas []ohminer.StreamDelta
	var lastID string
	for sc.Scan() && len(deltas) < 2 {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			lastID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			var d ohminer.StreamDelta
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &d); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(d.Seq) != lastID {
				t.Fatalf("event id %s for delta seq %d", lastID, d.Seq)
			}
			deltas = append(deltas, d)
		}
	}
	if len(deltas) != 2 || deltas[0].Seq != 1 || deltas[1].Seq != 2 {
		t.Fatalf("deltas: %+v (scan err %v)", deltas, sc.Err())
	}
	if deltas[0].Added != 2 { // chain 0-1-2 in both orders
		t.Fatalf("event 1: %+v", deltas[0])
	}
}

// TestStreamSlowConsumerDrops: a subscriber whose buffer is full loses
// events (accounted) instead of stalling batch application.
func TestStreamSlowConsumerDrops(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, Config{StreamDir: dir, Workers: 1, StreamBufEvents: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/streams", `{"id": "slow", "num_vertices": 8}`)
	_, body := postJSON(t, ts.URL+"/streams/slow/queries", `{"pattern": "0 1; 1 2"}`)
	var q ohminer.StreamQueryInfo
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}

	// Subscribe directly (no reader draining the channel) so the buffer
	// (capacity 1) overflows deterministically.
	st, err := s.getStream("slow")
	if err != nil {
		t.Fatal(err)
	}
	sub, _, unsub := st.subscribe(q.ID, 0, s.cfg.StreamBufEvents)
	for i := 1; i <= 4; i++ {
		postJSON(t, ts.URL+"/streams/slow/batches",
			fmt.Sprintf(`{"seq": %d, "add": [[%d,%d]]}`, i, i, i+1))
	}
	dropped := unsub()
	if dropped != 3 {
		t.Fatalf("dropped %d, want 3 (buffer 1, 4 events)", dropped)
	}
	if got := s.streamDropped.Value(); got != 3 {
		t.Fatalf("expvar dropped %d", got)
	}
	if len(sub.ch) != 1 {
		t.Fatalf("buffered %d", len(sub.ch))
	}
	if d := <-sub.ch; d.Seq != 1 {
		t.Fatalf("survivor seq %d", d.Seq)
	}
}

// TestStreamRestartReload: a second Server over the same StreamDir resumes
// the stream from its snapshot — epoch, live edges, and cumulative query
// counters intact — and replayed batches ack idempotently.
func TestStreamRestartReload(t *testing.T) {
	dir := t.TempDir()
	s1 := testServer(t, Config{StreamDir: dir, Workers: 1})
	ts1 := httptest.NewServer(s1.Handler())

	postJSON(t, ts1.URL+"/streams", `{"id": "dur", "num_vertices": 8, "window": 10}`)
	postJSON(t, ts1.URL+"/streams/dur/queries", `{"pattern": "0 1; 1 2"}`)
	postJSON(t, ts1.URL+"/streams/dur/batches", `{"seq": 1, "add": [[0,1],[1,2]]}`)
	postJSON(t, ts1.URL+"/streams/dur/batches", `{"seq": 2, "add": [[2,3]], "retire": [[0,1]]}`)
	var before StreamStatus
	getJSON(t, ts1.URL+"/streams/dur", &before)
	ts1.Close() // the "crash": nothing flushed beyond the per-batch snapshots

	s2 := testServer(t, Config{StreamDir: dir, Workers: 1})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	var after StreamStatus
	getJSON(t, ts2.URL+"/streams/dur", &after)
	if after.Epoch != before.Epoch || after.LiveEdges != before.LiveEdges {
		t.Fatalf("reload drifted: %+v vs %+v", after, before)
	}
	if len(after.Queries) != 1 || after.Queries[0].Total != before.Queries[0].Total {
		t.Fatalf("query counters drifted: %+v vs %+v", after.Queries, before.Queries)
	}

	// The feeder replays its log: seq 1,2 ack without recounting, seq 3
	// applies.
	for seq, wantApplied := range map[int]bool{1: false, 2: false} {
		resp, body := postJSON(t, ts2.URL+"/streams/dur/batches",
			fmt.Sprintf(`{"seq": %d, "add": [[0,1]]}`, seq))
		var br StreamBatchResponse
		if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &br) != nil {
			t.Fatalf("replay seq %d: %d %s", seq, resp.StatusCode, body)
		}
		if br.Applied != wantApplied {
			t.Fatalf("replay seq %d: applied=%v", seq, br.Applied)
		}
	}
	resp, body := postJSON(t, ts2.URL+"/streams/dur/batches", `{"seq": 3, "add": [[3,4]]}`)
	var br StreamBatchResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &br) != nil {
		t.Fatalf("seq 3: %d %s", resp.StatusCode, body)
	}
	if !br.Applied || br.Epoch != 3 {
		t.Fatalf("seq 3: %+v", br)
	}
	if got := s2.streamsReloaded.Value(); got != 1 {
		t.Fatalf("streams_reloaded %d", got)
	}
}

// TestStreamDisabled: without StreamDir every stream endpoint answers 503.
func TestStreamDisabled(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/streams", `{"id": "x", "num_vertices": 4}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/streams/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status: %d", resp.StatusCode)
	}
}

// TestStreamBadRequests: malformed inputs are rejected without touching
// stream state.
func TestStreamBadRequests(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, Config{StreamDir: dir, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		url, body string
		want      int
	}{
		{"/streams", `{"id": "../evil", "num_vertices": 4}`, http.StatusBadRequest},
		{"/streams", `{"id": "ok"}`, http.StatusBadRequest}, // missing num_vertices
		{"/streams", `{"id": "ok", "num_vertices": 4, "bogus": 1}`, http.StatusBadRequest},
		{"/streams/absent/batches", `{"add": [[0,1]]}`, http.StatusNotFound},
		{"/streams/absent/queries", `{"pattern": "0 1"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s: %d (%s), want %d", tc.url, tc.body, resp.StatusCode, body, tc.want)
		}
	}

	postJSON(t, ts.URL+"/streams", `{"id": "v", "num_vertices": 4}`)
	// Vertex out of range: batch refused, stream state untouched.
	resp, _ := postJSON(t, ts.URL+"/streams/v/batches", `{"seq": 1, "add": [[0,9]]}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad batch: %d", resp.StatusCode)
	}
	var status StreamStatus
	getJSON(t, ts.URL+"/streams/v", &status)
	if status.Epoch != 0 || status.LiveEdges != 0 {
		t.Fatalf("poisoned by bad batch: %+v", status)
	}
	// Labeled pattern refused for standing queries.
	resp, _ = postJSON(t, ts.URL+"/streams/v/queries", `{"pattern": "bogus ;;"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pattern: %d", resp.StatusCode)
	}
}
