package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ohminer"
)

// jobsFixture: a 60-edge star (edges[i] = {0, i+1}) where "0 1; 0 2" has
// exactly 60×59 = 3540 ordered embeddings — big enough to straddle several
// short checkpoint periods when throttled, small enough to finish fast
// unthrottled. The same construction backs the engine's chaos tests.
const starWant = 60 * 59

func jobsServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	edges := make([][]uint32, 60)
	for i := range edges {
		edges[i] = []uint32{0, uint32(i) + 1}
	}
	h, err := ohminer.BuildHypergraph(61, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(ohminer.NewSession(ohminer.NewStore(h)), cfg)
}

func timeoutCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data := make([]byte, 0, 512)
	buf := make([]byte, 512)
	for {
		n, err := resp.Body.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			return resp, data
		}
	}
}

func getStatus(t *testing.T, url, id string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// waitState polls GET /jobs/{id} until the job reaches want (or fails the
// test after a few seconds).
func waitState(t *testing.T, url, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatus(t, url, id)
		if code == http.StatusOK && st.State == want {
			return st
		}
		if code == http.StatusOK && (st.State == "failed" || (st.State == "done" && want != "done")) {
			t.Fatalf("job %s reached terminal state %q (err %q) while waiting for %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return JobStatus{}
}

// TestQueryTrailingGarbage: a body holding a second JSON value after the
// request object is a 400, not a silently half-read query.
func TestQueryTrailingGarbage(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, body := range []string{
		`{"pattern": "0 1; 1 2"}{"pattern": "0 1"}`,
		`{"pattern": "0 1; 1 2"} trailing`,
	} {
		resp, out := postQuery(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("trailing garbage %q: status %d want 400 (%s)", body, resp.StatusCode, out)
		}
		if !strings.Contains(string(out), "trailing") {
			t.Errorf("trailing garbage %q: error %q does not name the cause", body, out)
		}
	}
}

// TestJobsDisabled: without a checkpoint directory the jobs endpoints
// refuse with 503 and say why.
func TestJobsDisabled(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/jobs", `{"pattern": "0 1; 1 2"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /jobs: status %d want 503 (%s)", resp.StatusCode, body)
	}
	if code, _ := getStatus(t, ts.URL, "x"); code != http.StatusServiceUnavailable {
		t.Errorf("GET /jobs/x: status %d want 503", code)
	}
}

func TestJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := jobsServer(t, Config{CheckpointDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/jobs", `{"id": "t1", "pattern": "0 1; 0 2"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d (%s)", resp.StatusCode, body)
	}
	st := waitState(t, ts.URL, "t1", "done")
	if st.Result == nil || st.Result.Ordered != starWant || st.Result.Truncated {
		t.Fatalf("done status %+v, want ordered=%d untruncated", st, starWant)
	}

	// Durable layout: spec and result persisted, rolling snapshot removed.
	if _, err := os.Stat(filepath.Join(dir, "t1.job")); err != nil {
		t.Errorf("t1.job missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "t1.done")); err != nil {
		t.Errorf("t1.done missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "t1.ckpt")); !os.IsNotExist(err) {
		t.Errorf("t1.ckpt survived clean completion (err=%v)", err)
	}

	// Same id again: 409, both against memory and against the disk spec.
	if resp, body = postJSON(t, ts.URL+"/jobs", `{"id": "t1", "pattern": "0 1; 0 2"}`); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate id: status %d want 409 (%s)", resp.StatusCode, body)
	}
	// Hostile ids never reach the filesystem.
	if resp, body = postJSON(t, ts.URL+"/jobs", `{"id": "a.b", "pattern": "0 1; 0 2"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: status %d want 400 (%s)", resp.StatusCode, body)
	}
	if code, _ := getStatus(t, ts.URL, "nope"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d want 404", code)
	}
	// Resuming a finished job is an idempotent no-op answering done.
	resp, body = postJSON(t, ts.URL+"/jobs/t1/resume", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"done"`) {
		t.Errorf("resume of done job: status %d body %s, want 200 done", resp.StatusCode, body)
	}
	if s.jobsStarted.Value() != 1 {
		t.Errorf("jobs metric %d want 1", s.jobsStarted.Value())
	}
}

// TestJobInterruptResumeAcrossRestart is the headline robustness scenario:
// a throttled job checkpoints, the server aborts (SIGTERM-style), a brand
// new Server over the same directory resumes the job from its snapshot, and
// the final count is exact — no lost and no double-counted embeddings.
func TestJobInterruptResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	// The throttle must stretch the job well past the 10ms checkpoint period
	// even when the suite starves this test for CPU (a single-core box runs
	// the busy-wait miners and the Stat poller on the same core): if the job
	// completes before the plug is pulled, clean completion removes the
	// snapshot and there is nothing left to interrupt.
	throttle := func([]uint32) {
		end := time.Now().Add(200 * time.Microsecond)
		for time.Now().Before(end) {
		}
	}
	s1 := jobsServer(t, Config{
		CheckpointDir:    dir,
		CheckpointEvery:  10 * time.Millisecond,
		Workers:          2,
		debugOnEmbedding: throttle,
	})
	ts1 := httptest.NewServer(s1.Handler())

	resp, body := postJSON(t, ts1.URL+"/jobs", `{"id": "big", "pattern": "0 1; 0 2"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d (%s)", resp.StatusCode, body)
	}
	// Wait for at least one durable snapshot, then pull the plug.
	ckpt := filepath.Join(dir, "big.ckpt")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if _, st := getStatus(t, ts1.URL, "big"); st.State == "done" {
			t.Fatalf("job completed before it could be interrupted (%+v); the throttle is too light for this machine", st)
		}
		if time.Now().After(deadline) {
			code, st := getStatus(t, ts1.URL, "big")
			t.Fatalf("no checkpoint appeared (job: %d %+v)", code, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.Abort()
	if err := s1.DrainJobs(timeoutCtx(t, 10*time.Second)); err != nil {
		t.Fatalf("drain after abort: %v", err)
	}
	st := waitState(t, ts1.URL, "big", "interrupted")
	if st.Error == "" {
		t.Errorf("interrupted status carries no explanation: %+v", st)
	}
	ts1.Close()

	// "Restart": a fresh Server (fresh session, same hypergraph bytes) over
	// the same checkpoint directory. Before resuming, the disk view alone
	// must already say interrupted-with-progress.
	s2 := jobsServer(t, Config{CheckpointDir: dir, CheckpointEvery: 10 * time.Millisecond, Workers: 2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code, st2 := getStatus(t, ts2.URL, "big")
	if code != http.StatusOK || st2.State != "interrupted" || st2.CheckpointSeq == 0 {
		t.Fatalf("disk status after restart: %d %+v, want interrupted with a snapshot", code, st2)
	}

	resp, body = postJSON(t, ts2.URL+"/jobs/big/resume", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume: status %d (%s)", resp.StatusCode, body)
	}
	final := waitState(t, ts2.URL, "big", "done")
	if final.Result == nil || final.Result.Ordered != starWant || final.Result.Truncated {
		t.Fatalf("resumed result %+v, want exactly ordered=%d untruncated", final, starWant)
	}
	if final.Resumes != 1 {
		t.Errorf("resumes = %d want 1", final.Resumes)
	}
	if s2.jobsResumed.Value() != 1 {
		t.Errorf("jobs_resumed metric %d want 1", s2.jobsResumed.Value())
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("big.ckpt survived completion (err=%v)", err)
	}
}

// TestJobResumeCorruptSnapshotRejected: a damaged snapshot is refused with
// 422 and a descriptive error — never silently restarted from scratch.
func TestJobResumeCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "hurt.job"), []byte(`{"pattern": "0 1; 0 2"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "hurt.ckpt"), []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := jobsServer(t, Config{CheckpointDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/jobs/hurt/resume", "")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt snapshot resume: status %d want 422 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "snapshot unusable") {
		t.Errorf("error %q does not explain the snapshot is unusable", body)
	}
}

// TestJobResumeWithoutSnapshot: a job that died before its first checkpoint
// still resumes — from the persisted spec, starting over.
func TestJobResumeWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "early.job"), []byte(`{"pattern": "0 1; 0 2"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := jobsServer(t, Config{CheckpointDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, body := postJSON(t, ts.URL+"/jobs/early/resume", ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume without snapshot: status %d (%s)", resp.StatusCode, body)
	}
	st := waitState(t, ts.URL, "early", "done")
	if st.Result == nil || st.Result.Ordered != starWant {
		t.Fatalf("result %+v, want ordered=%d", st, starWant)
	}
}
