package serve

// Tests of the GET /jobs listing and of the cluster-coordinator mount.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"ohminer/internal/cluster"
)

func listJobs(t *testing.T, url string) (int, []JobStatus) {
	t.Helper()
	resp, err := http.Get(url + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode job list: %v", err)
		}
	}
	return resp.StatusCode, out.Jobs
}

// TestJobListDisabled: GET /jobs is part of the jobs subsystem and refuses
// with 503 when no checkpoint directory was configured.
func TestJobListDisabled(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := listJobs(t, ts.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /jobs without checkpoint dir: status %d, want 503", code)
	}
}

// TestJobList: the listing merges live jobs with jobs an earlier process
// left on disk, sorted by id, each with its reconstructed state.
func TestJobList(t *testing.T) {
	dir := t.TempDir()
	s := jobsServer(t, Config{CheckpointDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, jobs := listJobs(t, ts.URL); code != http.StatusOK || len(jobs) != 0 {
		t.Fatalf("empty listing: status %d, %d jobs; want 200 and none", code, len(jobs))
	}

	// One live job, run to completion.
	resp, body := postJSON(t, ts.URL+"/jobs", `{"id": "live", "pattern": "0 1; 0 2"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d (%s)", resp.StatusCode, body)
	}
	waitState(t, ts.URL, "live", "done")

	// One job only on disk, as a crashed previous process would leave it:
	// a spec file with no result.
	specPath := filepath.Join(dir, "orphan.job")
	if err := os.WriteFile(specPath, []byte(`{"pattern": "0 1; 0 2"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Stray files must not show up as jobs.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	code, jobs := listJobs(t, ts.URL)
	if code != http.StatusOK || len(jobs) != 2 {
		t.Fatalf("listing: status %d, %d jobs (%+v); want 200 and 2", code, len(jobs), jobs)
	}
	if jobs[0].ID != "live" || jobs[1].ID != "orphan" {
		t.Fatalf("listing order %q, %q; want live, orphan (sorted)", jobs[0].ID, jobs[1].ID)
	}
	if jobs[0].State != "done" || jobs[0].Ordered != starWant {
		t.Errorf("live job listed as %+v, want done with ordered=%d", jobs[0], starWant)
	}
	if jobs[1].State != "interrupted" {
		t.Errorf("orphan job listed as %q, want interrupted", jobs[1].State)
	}
}

// TestClusterMount: with Config.Cluster set, the coordinator's endpoints
// are served from the same mux as the query service; without it, /cluster
// does not exist.
func TestClusterMount(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	resp, err := http.Get(ts.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /cluster answered 200 on a server without a coordinator")
	}

	base := testServer(t, Config{})
	coord, err := cluster.New(base.Session().Store(), cluster.Config{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(base.Session(), Config{Cluster: coord})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster: status %d, want 200", resp.StatusCode)
	}
	var st cluster.ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode cluster status: %v", err)
	}
	if st.GraphFP != base.Session().Store().Hypergraph().Fingerprint() {
		t.Error("mounted coordinator reports the wrong graph fingerprint")
	}
}
