package serve

// Degraded-mode admission: when the mounted cluster coordinator cannot make
// its state durable (disk full under the WAL), the whole service surface
// sheds with 503 + Retry-After — including plain /query, which would
// otherwise happily burn CPU on a node whose cluster half is refusing work —
// and recovers on its own once the WAL heals.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ohminer/internal/cluster"
	"ohminer/internal/faultinject"
)

func TestQueryShedsWhileCoordinatorDegraded(t *testing.T) {
	base := testServer(t, Config{})
	nw := &faultinject.NoSpaceWriter{}
	coord, err := cluster.New(base.Session().Store(), cluster.Config{
		Parts: 2, Dir: t.TempDir(),
		FlushEvery: 5 * time.Millisecond,
		WALWrap:    func(w io.Writer) io.Writer { nw.W = w; return nw },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	s := New(base.Session(), Config{Cluster: coord})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, body := postQuery(t, ts.URL, `{"pattern": "0 1; 1 2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy query: status %d (%s)", resp.StatusCode, body)
	}

	// The disk fills. Degradation is observed on the first append that
	// fails — here a job admission the coordinator must refuse.
	nw.Break()
	if _, err := coord.StartJob("x", cluster.JobSpec{Pattern: "0 1; 1 2"}); err == nil {
		t.Fatal("StartJob succeeded with the WAL on a full disk")
	}
	resp, _ = postQuery(t, ts.URL, `{"pattern": "0 1; 1 2"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while degraded: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 carries no Retry-After")
	}
	if got := s.rejected.Value(); got == 0 {
		t.Error("degraded shed not counted in the rejected metric")
	}

	// Space frees up: the WAL flusher's probe record heals the coordinator
	// without a restart, and queries flow again.
	nw.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for coord.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("coordinator did not self-heal after the disk came back")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, body = postQuery(t, ts.URL, `{"pattern": "0 1; 1 2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after heal: status %d (%s)", resp.StatusCode, body)
	}
}
