package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ohminer"
)

// fixture: a 3-edge chain hypergraph. Pattern "0 1; 1 2" has 4 ordered /
// 2 unique embeddings (pairs e0–e1 and e1–e2, each in both orders).
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	h, err := ohminer.BuildHypergraph(4, [][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(ohminer.NewSession(ohminer.NewStore(h)), cfg)
}

func postQuery(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestQueryOK(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, body := postQuery(t, ts.URL, `{"pattern": "0 1; 1 2"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Ordered != 4 || qr.Unique != 2 || qr.Truncated {
			t.Fatalf("run %d: got %+v, want ordered=4 unique=2 untruncated", i, qr)
		}
	}
	hits, misses := s.Session().CacheStats()
	if misses != 1 || hits != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 2/1", hits, misses)
	}
	if got := s.queries.Value(); got != 3 {
		t.Errorf("queries metric %d want 3", got)
	}
}

func TestQueryRejections(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{pattern}`, http.StatusBadRequest},
		{"missing pattern", `{}`, http.StatusBadRequest},
		{"bad pattern", `{"pattern": "frogs"}`, http.StatusBadRequest},
		{"unknown field", `{"pattern": "0 1", "frob": 1}`, http.StatusBadRequest},
		{"unknown variant", `{"pattern": "0 1; 1 2", "variant": "Nope"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, body := postQuery(t, ts.URL, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, body)
		}
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d want 405", resp.StatusCode)
	}
}

// TestQueryLimitTruncates drives the Limit→Truncated path end to end, and
// its exactly-at-total complement: a limit equal to the full count must
// come back un-truncated (the Result.Truncated bugfix, observed through
// the service).
func TestQueryLimitTruncates(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts.URL, `{"pattern": "0 1; 1 2", "limit": 1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Truncated || qr.Ordered == 0 {
		t.Fatalf("limit 1: got %+v, want a truncated partial count", qr)
	}
	if s.truncations.Value() != 1 {
		t.Errorf("truncations metric %d want 1", s.truncations.Value())
	}

	resp, body = postQuery(t, ts.URL, `{"pattern": "0 1; 1 2", "limit": 4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Truncated || qr.Ordered != 4 {
		t.Fatalf("limit 4 (= total): got %+v, want full un-truncated count", qr)
	}
}

// TestMaxLimitApplied: the server-side cap applies to unlimited requests.
func TestMaxLimitApplied(t *testing.T) {
	s := testServer(t, Config{MaxLimit: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postQuery(t, ts.URL, `{"pattern": "0 1; 1 2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Truncated {
		t.Fatalf("MaxLimit 1: got %+v, want truncated", qr)
	}
}

// TestAdmissionSheds: with one mining slot held by a slow query, a second
// query whose admission wait exceeds its timeout is shed with 503.
func TestAdmissionSheds(t *testing.T) {
	s := testServer(t, Config{MaxConcurrent: 1, DebugDelay: 400 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postQuery(t, ts.URL, `{"pattern": "0 1; 1 2"}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("slot-holding query: status %d", resp.StatusCode)
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the first query take the slot
	resp, body := postQuery(t, ts.URL, `{"pattern": "0 1; 1 2", "timeout_ms": 50}`)
	wg.Wait()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued query: status %d want 503 (%s)", resp.StatusCode, body)
	}
	if s.rejected.Value() == 0 {
		t.Error("rejected metric did not count the shed query")
	}
}

// TestAbortCancelsInFlight: Abort (the post-drain escalation) cancels a
// query sitting in the debug-delay window.
func TestAbortCancelsInFlight(t *testing.T) {
	s := testServer(t, Config{DebugDelay: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, _ := postQuery(t, ts.URL, `{"pattern": "0 1; 1 2"}`)
		done <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	s.Abort()
	select {
	case code := <-done:
		if code != http.StatusServiceUnavailable {
			t.Fatalf("aborted query: status %d want 503", code)
		}
		if since := time.Since(start); since > time.Second {
			t.Errorf("abort→response took %v", since)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aborted query never returned")
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["edges"] != float64(3) || hz["vertices"] != float64(4) {
		t.Fatalf("healthz %v", hz)
	}
}

// TestVarsEndpoint: /debug/vars is valid JSON carrying this server's
// metrics (not just the process-global first instance).
func TestVarsEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, body := postQuery(t, ts.URL, `{"pattern": "0 1; 1 2"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Ohmserve struct {
			Queries     int64 `json:"queries"`
			CacheMisses int64 `json:"cache_misses"`
			InFlight    int64 `json:"in_flight"`
		} `json:"ohmserve"`
		Memstats map[string]any `json:"memstats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("vars not valid JSON: %v", err)
	}
	if vars.Ohmserve.Queries != 1 || vars.Ohmserve.CacheMisses != 1 {
		t.Errorf("vars ohmserve = %+v", vars.Ohmserve)
	}
	if vars.Memstats == nil {
		t.Error("vars missing the standard expvar memstats")
	}
}

// TestTimeoutReturnsPartial: a request-level timeout maps to the engine
// deadline — the response is a 200 with truncated counts, not an error.
// The debug delay eats most of the budget so mining starts with a deadline
// that has nearly expired.
func TestTimeoutReturnsPartial(t *testing.T) {
	// A denser chain so the query has real work to truncate.
	edges := make([][]uint32, 0, 60)
	for i := uint32(0); i < 60; i++ {
		edges = append(edges, []uint32{i, i + 1, i + 2})
	}
	h, err := ohminer.BuildHypergraph(64, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(ohminer.NewSession(ohminer.NewStore(h)), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// timeout_ms=1 with an OnEmbedding-free run may still finish; accept
	// either outcome but require a 200 and consistent flags.
	resp, body := postQuery(t, ts.URL, fmt.Sprintf(`{"pattern": "0 1; 1 2; 2 3", "timeout_ms": %d}`, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
}
