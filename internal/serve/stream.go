package serve

// The streams subsystem: push delivery for the streaming miner. A stream is
// a server-side stream.Miner fed by sequenced batches over HTTP; standing
// queries registered on it emit one delta event per applied batch, pushed
// to subscribers over Server-Sent Events (with a long-poll fallback for
// clients that cannot hold an SSE connection). Durability follows the jobs
// subsystem's discipline — everything needed to restart lives under
// StreamDir, all writes atomic:
//
//	<id>.stream  the stream spec — written at creation
//	<id>.ohmt    the rolling CRC-framed snapshot — replaced on cadence
//
// On restart a stream is lazily reloaded from its snapshot on first touch;
// feeders replay their batch log from their last acked seq and the miner's
// ErrStale answers make the replay idempotent (exactly-once counting).
//
// Delivery is at-most-once per subscriber with bounded buffering: a
// subscriber that cannot keep up has events dropped (counted, surfaced in
// expvar and on the next event's resync hint) rather than back-pressuring
// the apply path. The per-query event ring lets reconnecting subscribers
// backfill from their last seen event seq (?after=N) when the gap is
// shorter than the ring.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"ohminer"
	"ohminer/internal/engine"
	"ohminer/internal/stream"
)

// StreamSpec is the persisted description of a stream and the body of
// POST /streams (plus the optional "id").
type StreamSpec struct {
	// ID names the stream (same charset as job IDs). Empty picks one.
	ID string `json:"id,omitempty"`
	// NumVertices fixes the vertex universe.
	NumVertices int `json:"num_vertices"`
	// Window auto-retires hyperedges this many epochs after their last
	// add/refresh (0 = no expiry).
	Window uint64 `json:"window,omitempty"`
}

// StreamStatus is the JSON body of GET /streams/{id}.
type StreamStatus struct {
	ID           string                    `json:"id"`
	Epoch        uint64                    `json:"epoch"`
	LiveEdges    int                       `json:"live_edges"`
	RetiredEdges int                       `json:"retired_edges"`
	Queries      []ohminer.StreamQueryInfo `json:"queries,omitempty"`
}

// streamBatchRequest is the body of POST /streams/{id}/batches.
type streamBatchRequest struct {
	// Seq sequences the batch for idempotent replay: a batch whose Seq was
	// already applied answers applied=false instead of double-counting.
	// 0 = unsequenced (always applies).
	Seq    uint64     `json:"seq,omitempty"`
	Add    [][]uint32 `json:"add,omitempty"`
	Retire [][]uint32 `json:"retire,omitempty"`
}

// StreamBatchResponse is the JSON body of POST /streams/{id}/batches.
type StreamBatchResponse struct {
	// Applied is false when the batch's Seq was already applied (the
	// feeder replaying after a crash); counts were not touched again.
	Applied bool   `json:"applied"`
	Epoch   uint64 `json:"epoch"`
	// Added/Retired/Expired/Refreshed account hyperedges, not embeddings.
	Added     int  `json:"added"`
	Retired   int  `json:"retired"`
	Expired   int  `json:"expired"`
	Refreshed int  `json:"refreshed"`
	Compacted bool `json:"compacted,omitempty"`
	// Deltas carries each standing query's per-batch embedding delta —
	// the same events pushed to subscribers, inline for feeders that want
	// the ledger without a second connection.
	Deltas []ohminer.StreamDelta `json:"deltas,omitempty"`
}

// streamQueryRequest is the body of POST /streams/{id}/queries.
type streamQueryRequest struct {
	Pattern string `json:"pattern"`
}

// srvStream is one live stream in this process.
type srvStream struct {
	id string

	// mu serializes batch application with event publication so every
	// subscriber observes each query's events in seq order, and guards the
	// rings and subscriber sets.
	mu    sync.Mutex
	m     *ohminer.StreamMiner
	rings map[uint64][]ohminer.StreamDelta   // per-query backfill ring
	subs  map[uint64]map[*streamSub]struct{} // per-query subscribers
}

// streamSub is one event subscriber (SSE connection or long-poll waiter).
type streamSub struct {
	ch      chan ohminer.StreamDelta
	dropped uint64 // events lost to a full buffer; the owning srvStream's mu serializes access
}

// streamDir reports whether the streams subsystem is enabled.
func (s *Server) streamsEnabled() bool { return s.cfg.StreamDir != "" }

func (s *Server) streamPath(id, ext string) string {
	return filepath.Join(s.cfg.StreamDir, id+ext)
}

// streamConfig assembles the miner config for a stream: engine options
// bounded by the server's worker budget, snapshots to the stream's file on
// the configured cadence.
func (s *Server) streamConfig(spec StreamSpec) stream.Config {
	return stream.Config{
		NumVertices:   spec.NumVertices,
		Window:        spec.Window,
		Engine:        engine.Options{Workers: s.cfg.Workers},
		Snapshot:      &stream.FileSink{Path: s.streamPath(spec.ID, ".ohmt")},
		SnapshotEvery: uint64(s.cfg.StreamSnapshotEvery),
	}
}

// getStream returns the in-memory stream for id, lazily reloading it from
// StreamDir after a restart: the spec names the universe, the snapshot (if
// any) restores epoch, live edges, and every standing query's cumulative
// counters exactly.
func (s *Server) getStream(id string) (*srvStream, error) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if st, ok := s.streams[id]; ok {
		return st, nil
	}
	data, err := os.ReadFile(s.streamPath(id, ".stream"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, errStreamNotFound
		}
		return nil, err
	}
	var spec StreamSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("stream %s: corrupt spec: %w", id, err)
	}
	spec.ID = id
	cfg := s.streamConfig(spec)
	var m *ohminer.StreamMiner
	if _, serr := os.Stat(s.streamPath(id, ".ohmt")); serr == nil {
		m, err = stream.LoadFile(s.streamPath(id, ".ohmt"), cfg)
	} else {
		m, err = stream.NewMiner(cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("stream %s: %w", id, err)
	}
	st := s.installStreamLocked(id, m)
	s.streamsReloaded.Add(1)
	return st, nil
}

// installStreamLocked registers a live stream; callers hold streamMu. Rings
// exist for queries restored from the snapshot so subscriptions work
// immediately (backfill starts empty — events are not durable state).
func (s *Server) installStreamLocked(id string, m *ohminer.StreamMiner) *srvStream {
	st := &srvStream{
		id:    id,
		m:     m,
		rings: map[uint64][]ohminer.StreamDelta{},
		subs:  map[uint64]map[*streamSub]struct{}{},
	}
	for _, q := range m.Queries() {
		st.rings[q.ID] = nil
	}
	s.streams[id] = st
	return st
}

var errStreamNotFound = errors.New("no such stream")

// publish appends each delta to its query's ring and fans it out to
// subscribers; callers hold st.mu. A full subscriber buffer drops the event
// for that subscriber only (accounted) — the apply path never blocks on a
// slow consumer.
func (s *Server) publish(st *srvStream, deltas []ohminer.StreamDelta) {
	ring := s.cfg.StreamRing
	for _, d := range deltas {
		r := append(st.rings[d.QueryID], d)
		if len(r) > ring {
			r = r[len(r)-ring:]
		}
		st.rings[d.QueryID] = r
		for sub := range st.subs[d.QueryID] {
			select {
			case sub.ch <- d:
				s.streamEvents.Add(1)
			default:
				sub.dropped++
				s.streamDropped.Add(1)
			}
		}
	}
}

// subscribe registers a subscriber for qid and returns it with an unsubscribe
// func and the ring backfill of events with Seq > after.
func (st *srvStream) subscribe(qid, after uint64, buf int) (*streamSub, []ohminer.StreamDelta, func() uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sub := &streamSub{ch: make(chan ohminer.StreamDelta, buf)}
	if st.subs[qid] == nil {
		st.subs[qid] = map[*streamSub]struct{}{}
	}
	st.subs[qid][sub] = struct{}{}
	var backfill []ohminer.StreamDelta
	for _, d := range st.rings[qid] {
		if d.Seq > after {
			backfill = append(backfill, d)
		}
	}
	unsub := func() uint64 {
		st.mu.Lock()
		defer st.mu.Unlock()
		delete(st.subs[qid], sub)
		return sub.dropped
	}
	return sub, backfill, unsub
}

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	if !s.streamsEnabled() {
		s.reject(w, http.StatusServiceUnavailable, "streams disabled: start the server with -stream-dir")
		return
	}
	var spec StreamSpec
	if err := decodeStrict(w, r, &spec); err != nil {
		s.reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("stream-%d", s.streamSeq.Add(1))
	}
	if !validJobID(spec.ID) {
		s.reject(w, http.StatusBadRequest, "bad stream id (letters, digits, '-', '_'; <=64 chars)")
		return
	}
	if spec.NumVertices <= 0 {
		s.reject(w, http.StatusBadRequest, "num_vertices must be positive")
		return
	}
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if _, ok := s.streams[spec.ID]; ok {
		s.reject(w, http.StatusConflict, "stream exists: "+spec.ID)
		return
	}
	if _, err := os.Stat(s.streamPath(spec.ID, ".stream")); err == nil {
		s.reject(w, http.StatusConflict, "stream exists on disk: "+spec.ID)
		return
	}
	m, err := stream.NewMiner(s.streamConfig(spec))
	if err != nil {
		s.reject(w, http.StatusBadRequest, err.Error())
		return
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err == nil {
		err = writeFileAtomic(s.streamPath(spec.ID, ".stream"), append(data, '\n'))
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "persist spec: " + err.Error()})
		return
	}
	s.installStreamLocked(spec.ID, m)
	s.streamsCreated.Add(1)
	writeJSON(w, http.StatusCreated, StreamStatus{ID: spec.ID})
}

func (s *Server) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, StreamStatus{
		ID:           st.id,
		Epoch:        st.m.Epoch(),
		LiveEdges:    st.m.LiveEdges(),
		RetiredEdges: st.m.RetiredEdges(),
		Queries:      st.m.Queries(),
	})
}

// lookupStream resolves {id} or answers the request itself.
func (s *Server) lookupStream(w http.ResponseWriter, r *http.Request) (*srvStream, bool) {
	if !s.streamsEnabled() {
		s.reject(w, http.StatusServiceUnavailable, "streams disabled: start the server with -stream-dir")
		return nil, false
	}
	id := r.PathValue("id")
	if !validJobID(id) {
		s.reject(w, http.StatusBadRequest, "bad stream id")
		return nil, false
	}
	st, err := s.getStream(id)
	if errors.Is(err, errStreamNotFound) {
		s.reject(w, http.StatusNotFound, "no such stream: "+id)
		return nil, false
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return nil, false
	}
	return st, true
}

func (s *Server) handleStreamBatch(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	var req streamBatchRequest
	if err := decodeStrict(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	st.mu.Lock()
	res, err := st.m.ApplyBatch(ohminer.StreamBatch{Seq: req.Seq, Add: req.Add, Retire: req.Retire})
	switch {
	case errors.Is(err, stream.ErrStale):
		// Feeder replay after a crash: already counted (and the miner has
		// re-confirmed durability before answering) — idempotent ack.
		epoch := st.m.Epoch()
		st.mu.Unlock()
		s.streamReplays.Add(1)
		writeJSON(w, http.StatusOK, StreamBatchResponse{Applied: false, Epoch: epoch})
		return
	case errors.Is(err, stream.ErrGap):
		st.mu.Unlock()
		s.reject(w, http.StatusConflict, err.Error())
		return
	case err != nil && res != nil:
		// Applied in memory but the snapshot write failed: refuse the ack
		// so the feeder retries; the retry answers ErrStale only after the
		// miner has healed durability.
		st.mu.Unlock()
		s.streamDurabilityErrs.Add(1)
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "batch applied but not durable, retry same seq: " + err.Error()})
		return
	case err != nil:
		st.mu.Unlock()
		s.reject(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.publish(st, res.Deltas)
	st.mu.Unlock()
	s.streamBatches.Add(1)
	writeJSON(w, http.StatusOK, StreamBatchResponse{
		Applied:   true,
		Epoch:     res.Epoch,
		Added:     res.Added,
		Retired:   res.Retired,
		Expired:   res.Expired,
		Refreshed: res.Refreshed,
		Compacted: res.Compacted,
		Deltas:    res.Deltas,
	})
}

func (s *Server) handleStreamQueryCreate(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	var req streamQueryRequest
	if err := decodeStrict(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	p, err := ohminer.ParsePattern(req.Pattern)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad pattern: "+err.Error())
		return
	}
	st.mu.Lock()
	info, err := st.m.RegisterQuery(p)
	if err == nil && st.rings[info.ID] == nil {
		st.rings[info.ID] = nil
	}
	st.mu.Unlock()
	if err != nil {
		s.reject(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	code := http.StatusCreated
	if info.Existing {
		// An isomorphic pattern is already standing; its events answer
		// this registration too.
		code = http.StatusOK
	}
	writeJSON(w, code, info)
}

// streamEventsEnvelope is the long-poll response body.
type streamEventsEnvelope struct {
	Events []ohminer.StreamDelta `json:"events"`
	// Dropped counts events lost to this subscriber's buffer since it
	// connected; a non-zero value tells the client its cumulative view
	// needs a resync from GET /streams/{id} totals.
	Dropped uint64 `json:"dropped,omitempty"`
}

func (s *Server) handleStreamEvents(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	qid, err := strconv.ParseUint(r.PathValue("qid"), 10, 64)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad query id")
		return
	}
	if _, ok := st.m.Query(qid); !ok {
		s.reject(w, http.StatusNotFound, "no such query")
		return
	}
	var after uint64
	if v := r.URL.Query().Get("after"); v != "" {
		if after, err = strconv.ParseUint(v, 10, 64); err != nil {
			s.reject(w, http.StatusBadRequest, "bad after")
			return
		}
	}
	if r.URL.Query().Get("poll") != "" {
		s.longPollEvents(w, r, st, qid, after)
		return
	}
	s.sseEvents(w, r, st, qid, after)
}

// sseEvents streams deltas as Server-Sent Events until the client
// disconnects or the server aborts. Event ids carry the per-query seq so a
// reconnecting client resumes with ?after=<last id>.
func (s *Server) sseEvents(w http.ResponseWriter, r *http.Request, st *srvStream, qid, after uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.reject(w, http.StatusNotAcceptable, "streaming unsupported by connection; use ?poll=1")
		return
	}
	sub, backfill, unsub := st.subscribe(qid, after, s.cfg.StreamBufEvents)
	defer unsub()
	s.streamSubs.Add(1)
	defer s.streamSubs.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Push the headers out now: a subscriber with no backfill would
	// otherwise sit in the select below with the response still buffered,
	// and the client would never see the connection established.
	fl.Flush()
	writeEvent := func(d ohminer.StreamDelta) bool {
		data, err := json.Marshal(d)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: delta\ndata: %s\n\n", d.Seq, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, d := range backfill {
		if !writeEvent(d) {
			return
		}
	}
	for {
		select {
		case d := <-sub.ch:
			if !writeEvent(d) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.abortCtx.Done():
			return
		case <-s.drainCtx.Done():
			return
		}
	}
}

// longPollEvents is the fallback for clients that cannot hold an SSE
// connection: return any ring events with Seq > after immediately, else
// wait up to wait_ms (default 10s, capped at 60s) for the next event.
func (s *Server) longPollEvents(w http.ResponseWriter, r *http.Request, st *srvStream, qid, after uint64) {
	wait := 10 * time.Second
	if v := r.URL.Query().Get("wait_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			s.reject(w, http.StatusBadRequest, "bad wait_ms")
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > time.Minute {
		wait = time.Minute
	}
	sub, backfill, unsub := st.subscribe(qid, after, s.cfg.StreamBufEvents)
	if len(backfill) > 0 {
		dropped := unsub()
		writeJSON(w, http.StatusOK, streamEventsEnvelope{Events: backfill, Dropped: dropped})
		return
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	var events []ohminer.StreamDelta
	select {
	case d := <-sub.ch:
		events = append(events, d)
		// Drain whatever arrived in the same burst.
		for {
			select {
			case d := <-sub.ch:
				events = append(events, d)
				continue
			default:
			}
			break
		}
	case <-timer.C:
	case <-r.Context().Done():
	case <-s.abortCtx.Done():
	case <-s.drainCtx.Done():
	}
	dropped := unsub()
	writeJSON(w, http.StatusOK, streamEventsEnvelope{Events: events, Dropped: dropped})
}
