// Package serve implements the ohmserve HTTP query service: a JSON query
// endpoint over a plan-cached ohminer.Session, with per-request
// timeout/limit mapping, concurrency admission control, expvar metrics,
// pprof, and cooperative drain for graceful shutdown.
//
// The design follows the deployment the paper's API discussion envisions
// (and HGMatch argues for): the store is built once, queries arrive
// continuously, plans are cached per pattern, and every query runs with
// bounded resources — a worker budget, a deadline, an embedding limit, and
// a slot in the admission semaphore. Cancellation reaches the mining
// workers through Session.MineContext, so a disconnected client or a
// draining server stops burning CPU within one candidate check.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ohminer"
	"ohminer/internal/cluster"
)

// Config bounds the per-query and per-server resources.
type Config struct {
	// MaxConcurrent is the admission-semaphore width: at most this many
	// queries mine at once, later arrivals wait their turn (bounded by
	// their own timeout). ≤0 selects 2×GOMAXPROCS.
	MaxConcurrent int
	// DefaultTimeout applies to requests that carry no timeout_ms
	// (0 = 10s). The timeout maps to the engine deadline: an expired query
	// returns its partial counts marked truncated, not an error.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout (0 = 2m).
	MaxTimeout time.Duration
	// MaxLimit caps the per-request embedding limit and is applied to
	// requests that ask for no limit at all (0 = uncapped).
	MaxLimit uint64
	// Workers bounds the engine worker count per query (0 = engine
	// default, i.e. GOMAXPROCS).
	Workers int
	// DebugDelay injects artificial latency before each query starts
	// mining. Test hook for the graceful-drain smoke test; zero in
	// production.
	DebugDelay time.Duration
	// CheckpointDir enables the jobs subsystem (POST /jobs): job specs,
	// rolling snapshots, and results are persisted there so long runs
	// survive a restart. Empty disables /jobs.
	CheckpointDir string
	// CheckpointEvery is the snapshot period for jobs (0 = 5s).
	CheckpointEvery time.Duration
	// Cluster, when set, mounts the distributed-mining coordinator's
	// endpoints (/cluster, /cluster/jobs, and the worker lease protocol) on
	// this server — ohmserve's -cluster mode. Nil serves single-node only.
	Cluster *cluster.Coordinator
	// StreamDir enables the streams subsystem (POST /streams): stream
	// specs and rolling snapshots are persisted there so streams survive a
	// restart. Empty disables /streams.
	StreamDir string
	// StreamSnapshotEvery is the snapshot cadence in applied batches
	// (0 = every batch — the strongest durability, and what makes a
	// feeder's ack imply its batch survives a SIGKILL).
	StreamSnapshotEvery int
	// StreamBufEvents bounds each event subscriber's buffer; a subscriber
	// that falls further behind has events dropped (and counted) rather
	// than stalling batch application (0 = 64).
	StreamBufEvents int
	// StreamRing bounds the per-query event ring kept for reconnect
	// backfill (?after=N) (0 = 256).
	StreamRing int

	// debugOnEmbedding throttles job mining per embedding. Test hook (the
	// interrupt/resume tests need runs that outlast a checkpoint period);
	// nil in production.
	debugOnEmbedding func([]uint32)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5 * time.Second
	}
	if c.StreamSnapshotEvery <= 0 {
		c.StreamSnapshotEvery = 1
	}
	if c.StreamBufEvents <= 0 {
		c.StreamBufEvents = 64
	}
	if c.StreamRing <= 0 {
		c.StreamRing = 256
	}
	return c
}

// Server answers pattern-mining queries over one Session. Create with New;
// mount Handler on an http.Server.
type Server struct {
	sess *ohminer.Session
	cfg  Config
	sem  chan struct{}

	// abortCtx is cancelled by Abort to hard-stop every in-flight query
	// (the escalation path when graceful drain exceeds its budget).
	abortCtx  context.Context
	abortStop context.CancelFunc

	// drainCtx is cancelled by DisconnectStreams to close long-lived
	// event subscriptions (SSE, parked long-polls). These would otherwise
	// hold http.Server.Shutdown open forever, so the binary registers
	// DisconnectStreams via RegisterOnShutdown.
	drainCtx  context.Context
	drainStop context.CancelFunc

	queries     expvar.Int // admitted queries
	rejected    expvar.Int // refused before mining (bad request, full queue)
	errors      expvar.Int // queries that failed after admission
	truncations expvar.Int // truncated results served
	inFlight    expvar.Int // queries/jobs currently mining
	jobsStarted expvar.Int // jobs created via POST /jobs
	jobsResumed expvar.Int // jobs restarted via POST /jobs/{id}/resume
	vars        *expvar.Map

	// Jobs subsystem (enabled by Config.CheckpointDir; see jobs.go).
	jobsMu sync.Mutex
	jobs   map[string]*job // guarded by jobsMu
	jobSeq atomic.Uint64
	jobWG  sync.WaitGroup

	// Streams subsystem (enabled by Config.StreamDir; see stream.go).
	streamMu  sync.Mutex
	streams   map[string]*srvStream // guarded by streamMu
	streamSeq atomic.Uint64

	streamsCreated       expvar.Int // streams created via POST /streams
	streamsReloaded      expvar.Int // streams lazily reloaded from StreamDir
	streamBatches        expvar.Int // batches applied (fresh, counted once)
	streamReplays        expvar.Int // stale batches acked idempotently
	streamEvents         expvar.Int // delta events delivered to subscribers
	streamDropped        expvar.Int // delta events dropped (slow consumers)
	streamSubs           expvar.Int // current event subscribers
	streamDurabilityErrs expvar.Int // batches applied but not yet durable
}

// New creates a Server over the session. The first Server created in a
// process also publishes its metrics in the global expvar namespace under
// "ohmserve"; later instances (tests) keep their metrics reachable through
// their own /debug/vars handler.
func New(sess *ohminer.Session, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sess:    sess,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		jobs:    map[string]*job{},
		streams: map[string]*srvStream{},
	}
	s.abortCtx, s.abortStop = context.WithCancel(context.Background())
	s.drainCtx, s.drainStop = context.WithCancel(context.Background())
	m := new(expvar.Map).Init()
	m.Set("queries", &s.queries)
	m.Set("rejected", &s.rejected)
	m.Set("errors", &s.errors)
	m.Set("truncations", &s.truncations)
	m.Set("in_flight", &s.inFlight)
	m.Set("jobs", &s.jobsStarted)
	m.Set("jobs_resumed", &s.jobsResumed)
	m.Set("streams", &s.streamsCreated)
	m.Set("streams_reloaded", &s.streamsReloaded)
	m.Set("stream_batches", &s.streamBatches)
	m.Set("stream_batches_replayed", &s.streamReplays)
	m.Set("stream_events", &s.streamEvents)
	m.Set("stream_events_dropped", &s.streamDropped)
	m.Set("stream_subscribers", &s.streamSubs)
	m.Set("stream_durability_errors", &s.streamDurabilityErrs)
	m.Set("cache_hits", expvar.Func(func() any { h, _ := sess.CacheStats(); return h }))
	m.Set("cache_misses", expvar.Func(func() any { _, mi := sess.CacheStats(); return mi }))
	m.Set("cached_plans", expvar.Func(func() any { return sess.CachedPlans() }))
	m.Set("result_cache_hits", expvar.Func(func() any { h, _ := sess.ResultCacheStats(); return h }))
	m.Set("result_cache_misses", expvar.Func(func() any { _, mi := sess.ResultCacheStats(); return mi }))
	m.Set("cached_results", expvar.Func(func() any { return sess.CachedResults() }))
	s.vars = m
	publish(m)
	return s
}

var publishMu sync.Mutex

// publish registers m as the process-global "ohmserve" expvar exactly once
// (expvar.Publish panics on duplicates, and tests create many Servers).
func publish(m *expvar.Map) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get("ohmserve") == nil {
		expvar.Publish("ohmserve", m)
	}
}

// Abort cancels every in-flight query. The graceful path is
// http.Server.Shutdown, which stops accepting and waits for handlers to
// finish (each bounded by its own deadline); Abort is the escalation when
// that wait exceeds the drain budget.
func (s *Server) Abort() { s.abortStop() }

// DisconnectStreams closes every open event subscription (SSE streams and
// parked long-polls). Subscribers are push-only and lossless to reconnect
// (?after=N backfills), so this is safe to call at the start of a graceful
// shutdown — typically via http.Server.RegisterOnShutdown — where the open
// connections would otherwise hold Shutdown past its drain budget.
func (s *Server) DisconnectStreams() { s.drainStop() }

// Session returns the underlying query session.
func (s *Server) Session() *ohminer.Session { return s.sess }

// Handler returns the service mux: POST /query, the jobs endpoints
// (GET /jobs, POST /jobs, GET /jobs/{id}, POST /jobs/{id}/resume — 503
// unless Config.CheckpointDir is set), the streams endpoints
// (POST /streams, GET /streams/{id}, POST /streams/{id}/batches,
// POST /streams/{id}/queries, GET /streams/{id}/queries/{qid}/events —
// 503 unless Config.StreamDir is set), the cluster coordinator endpoints
// when Config.Cluster is set (GET /cluster, POST /cluster/jobs, and the
// worker lease protocol), GET /healthz, GET /debug/vars (expvar), and the
// net/http/pprof endpoints under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("GET /jobs", s.handleJobList)
	mux.HandleFunc("POST /jobs", s.handleJobCreate)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleJobResume)
	mux.HandleFunc("POST /streams", s.handleStreamCreate)
	mux.HandleFunc("GET /streams/{id}", s.handleStreamStatus)
	mux.HandleFunc("POST /streams/{id}/batches", s.handleStreamBatch)
	mux.HandleFunc("POST /streams/{id}/queries", s.handleStreamQueryCreate)
	mux.HandleFunc("GET /streams/{id}/queries/{qid}/events", s.handleStreamEvents)
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.Register(mux)
	}
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// QueryRequest is the JSON body of POST /query.
type QueryRequest struct {
	// Pattern is the pattern literal, e.g. "0 1 2; 2 3 4".
	Pattern string `json:"pattern"`
	// Variant selects the engine configuration by paper name (default
	// "OHMiner"); see ohminer.WithVariant.
	Variant string `json:"variant,omitempty"`
	// Limit stops the query after this many ordered embeddings (0 = the
	// server's MaxLimit, which may be unlimited).
	Limit uint64 `json:"limit,omitempty"`
	// TimeoutMS bounds the mining time; an expired query returns partial
	// counts marked truncated. 0 = the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// DataAwareOrder derives the matching order from data selectivity.
	DataAwareOrder bool `json:"data_aware_order,omitempty"`
}

// QueryResponse is the JSON body of a successful query.
type QueryResponse struct {
	Ordered       uint64  `json:"ordered"`
	Unique        uint64  `json:"unique"`
	Automorphisms int     `json:"automorphisms"`
	Truncated     bool    `json:"truncated"`
	ElapsedMS     float64 `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) reject(w http.ResponseWriter, code int, msg string) {
	s.rejected.Add(1)
	writeJSON(w, code, errorResponse{Error: msg})
}

// shedDegraded refuses work-accepting requests (503 + Retry-After) while an
// attached durable cluster coordinator cannot persist state — no layer of
// the service should accept work whose bookkeeping would be lost by a crash.
// Reports whether the request was shed.
func (s *Server) shedDegraded(w http.ResponseWriter) bool {
	if s.cfg.Cluster == nil || !s.cfg.Cluster.Degraded() {
		return false
	}
	s.rejected.Add(1)
	s.cfg.Cluster.RejectDegraded(w, nil)
	return true
}

// decodeStrict parses exactly one JSON value from the request body into v:
// unknown fields and trailing garbage (a second JSON value, stray bytes
// after the object) are errors, so a malformed client — e.g. one
// concatenating two requests into one body — gets a 400 instead of a
// silently half-read query.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The response writer owns delivery failures (client gone); nothing
	// useful to do with an encode error here.
	_ = enc.Encode(v)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.shedDegraded(w) {
		return
	}
	var req QueryRequest
	if err := decodeStrict(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Pattern == "" {
		s.reject(w, http.StatusBadRequest, "missing \"pattern\"")
		return
	}
	p, err := ohminer.ParsePattern(req.Pattern)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad pattern: "+err.Error())
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	limit := req.Limit
	if s.cfg.MaxLimit > 0 && (limit == 0 || limit > s.cfg.MaxLimit) {
		limit = s.cfg.MaxLimit
	}
	opts := []ohminer.Option{
		ohminer.WithDeadline(timeout),
		ohminer.WithLimit(limit),
		ohminer.WithWorkers(s.cfg.Workers),
	}
	if req.Variant != "" {
		opts = append(opts, ohminer.WithVariant(req.Variant))
	}
	if req.DataAwareOrder {
		opts = append(opts, ohminer.WithDataAwareOrder())
	}

	// One context covers the whole query: the client disconnecting, the
	// admission wait, the mining run, and a server Abort all cancel it.
	// The timeout itself is NOT on the context — it maps to the engine
	// deadline so an expired query answers with truncated partial counts.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopWatch := context.AfterFunc(s.abortCtx, cancel)
	defer stopWatch()

	// Admission: wait for a mining slot, but never longer than the query's
	// own time budget — a saturated server sheds load instead of queueing
	// unboundedly.
	admit := time.NewTimer(timeout)
	defer admit.Stop()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.reject(w, http.StatusServiceUnavailable, "cancelled while queued")
		return
	case <-admit.C:
		s.reject(w, http.StatusServiceUnavailable, "server saturated: admission queue timed out")
		return
	}
	defer func() { <-s.sem }()

	s.queries.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	if s.cfg.DebugDelay > 0 {
		delay := time.NewTimer(s.cfg.DebugDelay)
		select {
		case <-delay.C:
		case <-ctx.Done():
		}
		delay.Stop()
	}

	res, err := s.sess.MineContext(ctx, p, opts...)
	switch {
	case ctx.Err() != nil:
		// Client gone or server aborting: the partial result has no
		// recipient left to trust it.
		s.errors.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "query cancelled"})
		return
	case errors.Is(err, ohminer.ErrWorkerPanic):
		s.errors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	case err != nil:
		// Bad variant name, compile failure, label mismatch, …: the
		// query, not the server, is at fault.
		s.errors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	if res.Truncated {
		s.truncations.Add(1)
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Ordered:       res.Ordered,
		Unique:        res.Unique,
		Automorphisms: res.Automorphisms,
		Truncated:     res.Truncated,
		ElapsedMS:     float64(res.Elapsed) / float64(time.Millisecond),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.sess.Store().Hypergraph()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"vertices":     h.NumVertices(),
		"edges":        h.NumEdges(),
		"cached_plans": s.sess.CachedPlans(),
		"in_flight":    s.inFlight.Value(),
	})
}

// handleVars serves the expvar page off the server's own metric map, so
// every Server instance (not just the first one in the process) exposes
// live numbers; the standard globals (memstats, cmdline, and the published
// "ohmserve" map) follow.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\n%q: %s", "ohmserve", s.vars.String())
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "ohmserve" {
			return
		}
		fmt.Fprintf(w, ",\n%q: %s", kv.Key, kv.Value.String())
	})
	fmt.Fprintf(w, "\n}\n")
}
