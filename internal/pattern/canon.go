package pattern

// Canonical forms and symmetry-breaking restrictions.
//
// Canonicalization maps every member of an isomorphism class of patterns to
// one representative: hyperedges are permuted to minimize the rendered
// (region-vector, region-labels, edge-labels) byte string, and vertices are
// renamed region by region in mask order — the same realization ShapeOf's
// canonical region vector produces for unlabeled patterns. Two patterns are
// isomorphic iff their canonical keys are equal (Theorem 1 extended with
// per-region label multisets), so a query cache keyed on the canonical form
// deduplicates every way of writing the same pattern.
//
// Symmetry-breaking restrictions are the GraphZero-style ordering
// constraints derived from the automorphism group: for each non-trivial
// orbit of matching-order positions a chain of "data-edge ID at position i <
// ID at position j" comparisons is emitted, so an engine that enforces them
// enumerates exactly one ordered tuple — the lexicographically smallest —
// per unordered embedding.

import (
	"bytes"
	"encoding/binary"
	"sort"
)

// CanonMaxEdges bounds canonicalization: the search minimizes over all K!
// hyperedge permutations against 2^K regions, so patterns with more
// hyperedges fall back to literal identity (Canonical returns ok=false).
// 6! × 2^6 ≈ 46k renderings keeps the worst case well under a millisecond.
const CanonMaxEdges = 6

// Canonical returns the canonical representative of p's isomorphism class
// and ok=true, or (p, false) when the pattern exceeds CanonMaxEdges. The
// representative is deterministic: every pattern isomorphic to p — same
// structure, same vertex-label multiset per overlap region, same hyperedge
// labels up to the permutation — canonicalizes to the identical pattern.
// For unlabeled patterns it coincides with ShapeOf(p)'s realization.
func Canonical(p *Pattern) (*Pattern, bool) {
	cp, _, ok := canonicalize(p)
	return cp, ok
}

// CanonicalKey returns a compact isomorphism-invariant identity string and
// ok=true, or ("", false) beyond CanonMaxEdges. Keys of isomorphic patterns
// are equal; keys of non-isomorphic patterns differ.
func CanonicalKey(p *Pattern) (string, bool) {
	_, key, ok := canonicalize(p)
	return key, ok
}

// canonicalize computes the canonical pattern and key together. The
// rendering minimized over all hyperedge permutations is, per region mask in
// ascending order: the region's vertex count, then (labeled patterns) its
// sorted label multiset; followed by the permuted hyperedge-label sequence.
func canonicalize(p *Pattern) (*Pattern, string, bool) {
	k := p.NumEdges()
	if k > CanonMaxEdges {
		return p, "", false
	}
	// Region mask of every vertex (bit i ⇔ vertex ∈ hyperedge i). Vertex IDs
	// never referenced by an edge keep mask 0 and drop out of the canonical
	// form — they carry no structure.
	vmask := make([]uint32, p.numVertices)
	for i, e := range p.edges {
		for _, v := range e {
			vmask[v] |= 1 << uint(i)
		}
	}

	n := 1 << k
	render := make([]byte, 0, 8*n)
	best := []byte(nil)
	var bestPerm []int
	regionLabels := make([][]uint32, n) // scratch: labels per permuted region
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	permute(perm, 0, func(q []int) {
		// Permuted mask: bit i of pm(v) set iff v lies in original edge q[i].
		for mask := 1; mask < n; mask++ {
			regionLabels[mask] = regionLabels[mask][:0]
		}
		for v := 0; v < p.numVertices; v++ {
			if vmask[v] == 0 {
				continue
			}
			pm := uint32(0)
			for i := 0; i < k; i++ {
				if vmask[v]&(1<<uint(q[i])) != 0 {
					pm |= 1 << uint(i)
				}
			}
			label := uint32(0)
			if p.labels != nil {
				label = p.labels[v]
			}
			regionLabels[pm] = append(regionLabels[pm], label)
		}
		render = render[:0]
		for mask := 1; mask < n; mask++ {
			ls := regionLabels[mask]
			sort.Slice(ls, func(a, b int) bool { return ls[a] < ls[b] })
			render = binary.BigEndian.AppendUint32(render, uint32(len(ls)))
			if p.labels != nil {
				for _, l := range ls {
					render = binary.BigEndian.AppendUint32(render, l)
				}
			}
		}
		for i := 0; i < k; i++ {
			render = binary.BigEndian.AppendUint32(render, p.edgeLabel(q[i]))
		}
		if best == nil || bytes.Compare(render, best) < 0 {
			best = append(best[:0], render...)
			bestPerm = append(bestPerm[:0], q...)
		}
	})

	// Realize the canonical pattern from the winning permutation: vertices
	// are assigned region by region in ascending mask order (ties within a
	// region broken by label), exactly as Shape.Pattern does for unlabeled
	// shapes. Any permutation achieving the minimal rendering yields the
	// same realization, so the construction is deterministic.
	type canonVertex struct {
		mask  uint32
		label uint32
	}
	var verts []canonVertex
	for v := 0; v < p.numVertices; v++ {
		if vmask[v] == 0 {
			continue
		}
		pm := uint32(0)
		for i := 0; i < k; i++ {
			if vmask[v]&(1<<uint(bestPerm[i])) != 0 {
				pm |= 1 << uint(i)
			}
		}
		label := uint32(0)
		if p.labels != nil {
			label = p.labels[v]
		}
		verts = append(verts, canonVertex{pm, label})
	}
	sort.Slice(verts, func(a, b int) bool {
		if verts[a].mask != verts[b].mask {
			return verts[a].mask < verts[b].mask
		}
		return verts[a].label < verts[b].label
	})
	edges := make([][]uint32, k)
	var labels []uint32
	if p.labels != nil {
		labels = make([]uint32, len(verts))
	}
	for id, cv := range verts {
		if labels != nil {
			labels[id] = cv.label
		}
		for i := 0; i < k; i++ {
			if cv.mask&(1<<uint(i)) != 0 {
				edges[i] = append(edges[i], uint32(id))
			}
		}
	}
	var edgeLabels []uint32
	if p.edgeLabels != nil {
		edgeLabels = make([]uint32, k)
		for i := 0; i < k; i++ {
			edgeLabels[i] = p.edgeLabels[bestPerm[i]]
		}
	}
	cp, err := NewEdgeLabeled(edges, labels, edgeLabels)
	if err != nil {
		// Unreachable for valid inputs (the canonical form is isomorphic to
		// p), but fail safe: callers fall back to literal identity.
		return p, "", false
	}
	key := make([]byte, 0, len(best)+8)
	key = binary.BigEndian.AppendUint32(key, uint32(k))
	flags := uint32(0)
	if p.labels != nil {
		flags |= 1
	}
	if p.edgeLabels != nil {
		flags |= 2
	}
	key = binary.BigEndian.AppendUint32(key, flags)
	key = append(key, best...)
	return cp, string(key), true
}

// SymmetryRestrictions returns per-position symmetry-breaking restrictions
// for the pattern's hyperedge positions: Restrict[t] lists earlier positions
// j whose bound data-hyperedge ID must stay strictly below position t's
// (c[j] < c[t]). The constraints are derived from the automorphism group by
// a stabilizer chain (GraphZero): of each ordered tuple's |Aut| automorphic
// reorderings exactly one — the lexicographically smallest — satisfies every
// restriction, so an engine enforcing them counts each unordered embedding
// exactly once. All lists are empty when the pattern is asymmetric.
func (p *Pattern) SymmetryRestrictions() [][]int {
	return restrictionsFromPerms(len(p.edges), p.AutomorphismPerms())
}

// restrictionsFromPerms derives the stabilizer-chain restrictions from an
// automorphism group given as explicit permutations over m positions. At
// each level the first position p1 moved by the remaining subgroup anchors
// its orbit: every other orbit member q (necessarily q > p1, since positions
// below p1 are fixed) receives the restriction c[p1] < c[q], checkable the
// moment position q binds; then the subgroup is cut to the stabilizer of p1
// and the chain repeats until only the identity remains.
func restrictionsFromPerms(m int, perms [][]int) [][]int {
	out := make([][]int, m)
	group := perms
	for len(group) > 1 {
		p1 := -1
	findMoved:
		for i := 0; i < m; i++ {
			for _, pm := range group {
				if pm[i] != i {
					p1 = i
					break findMoved
				}
			}
		}
		if p1 < 0 {
			break // duplicate identities; nothing left to break
		}
		inOrbit := make(map[int]bool, len(group))
		for _, pm := range group {
			inOrbit[pm[p1]] = true
		}
		for q := range inOrbit {
			if q != p1 {
				out[q] = append(out[q], p1)
			}
		}
		var stab [][]int
		for _, pm := range group {
			if pm[p1] == p1 {
				stab = append(stab, pm)
			}
		}
		group = stab
	}
	for t := range out {
		sort.Ints(out[t])
	}
	return out
}
