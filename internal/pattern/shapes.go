package pattern

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Shape is an isomorphism class of unlabeled connected patterns with K
// hyperedges, identified by its canonical Venn region vector: Regions[mask]
// (mask ∈ [1, 2^K)) is the number of pattern vertices lying in exactly the
// hyperedges of mask. By Theorem 1, two patterns are isomorphic iff their
// region vectors agree up to a permutation of hyperedge bits, so the
// bit-permutation-minimal vector is a canonical form — shapes double as the
// canonical labels that motif counting needs.
type Shape struct {
	K       int
	Regions []int // length 2^K, index 0 unused; canonical under bit permutation
}

// Key returns a compact string identity for map keys.
func (s Shape) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", s.K)
	for mask := 1; mask < len(s.Regions); mask++ {
		if mask > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s.Regions[mask])
	}
	return b.String()
}

// NumVertices returns the total vertex count of the shape.
func (s Shape) NumVertices() int {
	total := 0
	for mask := 1; mask < len(s.Regions); mask++ {
		total += s.Regions[mask]
	}
	return total
}

// String renders the region vector with set expressions.
func (s Shape) String() string {
	var parts []string
	for mask := 1; mask < len(s.Regions); mask++ {
		if s.Regions[mask] > 0 {
			parts = append(parts, fmt.Sprintf("%0*b:%d", s.K, mask, s.Regions[mask]))
		}
	}
	return "shape{" + strings.Join(parts, " ") + "}"
}

// Pattern realizes the shape as a concrete pattern: vertices are assigned
// region by region, and hyperedge i collects the vertices of every region
// whose mask contains bit i.
func (s Shape) Pattern() (*Pattern, error) {
	edges := make([][]uint32, s.K)
	next := uint32(0)
	for mask := 1; mask < len(s.Regions); mask++ {
		for n := 0; n < s.Regions[mask]; n++ {
			v := next
			next++
			for i := 0; i < s.K; i++ {
				if mask&(1<<i) != 0 {
					edges[i] = append(edges[i], v)
				}
			}
		}
	}
	return New(edges, nil)
}

// ShapeOf returns the canonical shape of an unlabeled pattern.
func ShapeOf(p *Pattern) Shape {
	regions := p.Signature().RegionSizes()
	return Shape{K: p.NumEdges(), Regions: canonicalRegions(p.NumEdges(), regions)}
}

// canonicalRegions returns the lexicographically minimal region vector over
// all permutations of hyperedge bits.
func canonicalRegions(k int, regions []int) []int {
	best := make([]int, 1<<k)
	copy(best, regions)
	best[0] = 0
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	cand := make([]int, 1<<k)
	permute(perm, 0, func(p []int) {
		cand[0] = 0
		for mask := 1; mask < 1<<k; mask++ {
			var pm uint32
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					pm |= 1 << uint(p[i])
				}
			}
			cand[mask] = regions[pm]
		}
		for i := 1; i < 1<<k; i++ {
			if cand[i] < best[i] {
				copy(best, cand)
				break
			}
			if cand[i] > best[i] {
				break
			}
		}
	})
	return best
}

func permute(p []int, pos int, fn func([]int)) {
	if pos == len(p) {
		fn(p)
		return
	}
	for i := pos; i < len(p); i++ {
		p[pos], p[i] = p[i], p[pos]
		permute(p, pos+1, fn)
		p[pos], p[i] = p[i], p[pos]
	}
}

// EnumerateShapes lists every connected K-hyperedge shape whose regions
// each hold at most maxRegionSize vertices and whose total vertex count is
// at most maxVertices, one representative per isomorphism class, in
// deterministic order. K is capped at 4 (the vector space grows as
// (maxRegionSize+1)^(2^K−1)).
func EnumerateShapes(k, maxRegionSize, maxVertices int) ([]Shape, error) {
	if k < 1 || k > 4 {
		return nil, fmt.Errorf("pattern: EnumerateShapes supports 1..4 hyperedges, got %d", k)
	}
	if maxRegionSize < 1 || maxVertices < 1 {
		return nil, fmt.Errorf("pattern: non-positive bounds")
	}
	n := 1 << k
	regions := make([]int, n)
	seen := map[string]bool{}
	var out []Shape

	var rec func(mask, total int)
	rec = func(mask, total int) {
		if mask == n {
			if !shapeValid(k, regions) {
				return
			}
			canon := canonicalRegions(k, regions)
			s := Shape{K: k, Regions: canon}
			key := s.Key()
			if !seen[key] {
				seen[key] = true
				out = append(out, s)
			}
			return
		}
		for sz := 0; sz <= maxRegionSize && total+sz <= maxVertices; sz++ {
			regions[mask] = sz
			rec(mask+1, total+sz)
		}
		regions[mask] = 0
	}
	rec(1, 0)

	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// shapeValid demands non-empty hyperedges and overlap-connectivity.
func shapeValid(k int, regions []int) bool {
	// Edge sizes.
	for i := 0; i < k; i++ {
		size := 0
		for mask := 1; mask < 1<<k; mask++ {
			if mask&(1<<i) != 0 {
				size += regions[mask]
			}
		}
		if size == 0 {
			return false
		}
	}
	if k == 1 {
		return true
	}
	// Distinct hyperedges: some populated region must separate each pair.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			distinct := false
			for mask := 1; mask < 1<<k; mask++ {
				if regions[mask] > 0 && (mask&(1<<i) != 0) != (mask&(1<<j) != 0) {
					distinct = true
					break
				}
			}
			if !distinct {
				return false
			}
		}
	}
	// Connectivity over pairwise overlaps.
	overlap := func(i, j int) bool {
		for mask := 1; mask < 1<<k; mask++ {
			if mask&(1<<i) != 0 && mask&(1<<j) != 0 && regions[mask] > 0 {
				return true
			}
		}
		return false
	}
	visited := uint32(1)
	queue := []int{0}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for j := 0; j < k; j++ {
			if visited&(1<<j) == 0 && overlap(cur, j) {
				visited |= 1 << j
				queue = append(queue, j)
			}
		}
	}
	return bits.OnesCount32(visited) == k
}
