package pattern

import "testing"

// FuzzParse hardens the pattern-literal parser: no panics on arbitrary
// input; accepted patterns must roundtrip through String and keep their
// overlap signature.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"0 1 2; 2 3 4",
		"0 1",
		"0,1;1,2",
		"; ;",
		"0 1 2 3 4 5; 3 4 5 6 7 8; 3 4 5 6 7 9 10 11",
		"9999999 1; 1 2",
		"0 0 0; 0 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1024 {
			return // bound pattern vertex universes
		}
		p, err := Parse(input)
		if err != nil {
			return
		}
		rt, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", p.String(), err)
		}
		if !rt.Signature().Equal(p.Signature()) {
			t.Fatalf("signature changed across roundtrip for %q", input)
		}
		if p.Automorphisms() < 1 {
			t.Fatalf("automorphism group empty for %q", input)
		}
	})
}
