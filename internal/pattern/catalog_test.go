package pattern

import (
	"testing"

	"ohminer/internal/intset"
)

func TestChain(t *testing.T) {
	p, err := Chain(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() != 3 {
		t.Fatalf("edges %d", p.NumEdges())
	}
	s := p.Signature()
	if s.Size(0b011) != 2 || s.Size(0b110) != 2 {
		t.Fatalf("consecutive overlaps: %v", s.Sizes)
	}
	if s.Size(0b101) != 0 {
		t.Fatalf("ends overlap: %d", s.Size(0b101))
	}
	for i := 0; i < 3; i++ {
		if p.Degree(i) != 4 {
			t.Fatalf("degree %d", p.Degree(i))
		}
	}
	if _, err := Chain(2, 3, 0); err == nil {
		t.Error("disconnected chain accepted")
	}
	if _, err := Chain(2, 3, 3); err == nil {
		t.Error("overlap ≥ size accepted")
	}
}

func TestStar(t *testing.T) {
	p, err := Star(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Signature()
	// Every pair overlaps in exactly the core; the full intersection too.
	for mask := 3; mask < 1<<4; mask++ {
		if popcount(mask) >= 2 && s.Size(uint32(mask)) != 1 {
			t.Fatalf("mask %b overlap %d want 1", mask, s.Size(uint32(mask)))
		}
	}
	// All 4! leaf permutations are automorphisms.
	if p.Automorphisms() != 24 {
		t.Fatalf("automorphisms %d", p.Automorphisms())
	}
	if _, err := Star(2, 3, 3); err == nil {
		t.Error("identical leaves accepted")
	}
}

func TestCycle(t *testing.T) {
	p, err := Cycle(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Signature()
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		if s.Size(uint32(1<<i|1<<j)) != 1 {
			t.Fatalf("ring edge (%d,%d) overlap %d", i, j, s.Size(uint32(1<<i|1<<j)))
		}
	}
	if s.Size(0b0101) != 0 || s.Size(0b1010) != 0 {
		t.Fatal("opposite hyperedges overlap")
	}
	// Dihedral symmetry: 2k automorphisms.
	if p.Automorphisms() != 8 {
		t.Fatalf("automorphisms %d want 8", p.Automorphisms())
	}
	if _, err := Cycle(2, 4, 1); err == nil {
		t.Error("k=2 cycle accepted")
	}
	if _, err := Cycle(3, 2, 2); err == nil {
		t.Error("size < 2·overlap accepted")
	}
}

func TestNested(t *testing.T) {
	p, err := Nested(3, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree(0) != 6 || p.Degree(1) != 4 || p.Degree(2) != 2 {
		t.Fatalf("degrees %d %d %d", p.Degree(0), p.Degree(1), p.Degree(2))
	}
	for i := 1; i < 3; i++ {
		if !intset.IsSubset(p.Edge(i), p.Edge(i-1)) {
			t.Fatalf("edge %d not nested", i)
		}
	}
	if _, err := Nested(4, 6, 2); err == nil {
		t.Error("vanishing nested edge accepted")
	}
}

func TestClique(t *testing.T) {
	p, err := Clique(3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Signature()
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if s.Size(uint32(1<<i|1<<j)) == 0 {
				t.Fatalf("clique pair (%d,%d) disjoint", i, j)
			}
		}
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
