package pattern

import (
	"math/rand"
	"testing"

	"ohminer/internal/gen"
	"ohminer/internal/venn"
)

func TestEnumerateShapesK2(t *testing.T) {
	// K=2, region sizes ≤ 2, ≤ 6 vertices. Regions: A\B, B\A, A∩B with
	// A∩B ≥ 1 (connectivity) and the symmetric (a,b) ~ (b,a) pairs merged,
	// plus the both-empty-differences case is invalid only when it makes
	// the edges identical (A\B = B\A = 0).
	shapes, err := EnumerateShapes(2, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Valid canonical vectors (a ≤ b outside sizes, c ≥ 1, not both a=b=0):
	// (0,1,c),(0,2,c),(1,1,c),(1,2,c),(2,2,c) × c ∈ {1,2} = 10.
	if len(shapes) != 10 {
		for _, s := range shapes {
			t.Log(s)
		}
		t.Fatalf("K=2 shapes: %d want 10", len(shapes))
	}
	for _, s := range shapes {
		p, err := s.Pattern()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got := ShapeOf(p); got.Key() != s.Key() {
			t.Fatalf("roundtrip: %s → %s", s, got)
		}
	}
}

func TestEnumerateShapesPairwiseNonIsomorphic(t *testing.T) {
	shapes, err := EnumerateShapes(3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) < 5 {
		t.Fatalf("K=3 maxRegion=1: only %d shapes", len(shapes))
	}
	pats := make([]*Pattern, len(shapes))
	for i, s := range shapes {
		p, err := s.Pattern()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		pats[i] = p
	}
	for i := 0; i < len(pats); i++ {
		for j := i + 1; j < len(pats); j++ {
			iso, err := venn.IsomorphicAnyOrder(pats[i].Edges(), pats[j].Edges())
			if err != nil {
				t.Fatal(err)
			}
			if iso {
				t.Fatalf("shapes %s and %s realize isomorphic patterns", shapes[i], shapes[j])
			}
		}
	}
}

func TestEnumerateShapesErrors(t *testing.T) {
	if _, err := EnumerateShapes(0, 1, 5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := EnumerateShapes(5, 1, 5); err == nil {
		t.Error("k=5 accepted")
	}
	if _, err := EnumerateShapes(2, 0, 5); err == nil {
		t.Error("maxRegion=0 accepted")
	}
}

// TestShapeOfInvariantUnderReorder: sampled patterns map to the same shape
// after any hyperedge permutation.
func TestShapeOfInvariantUnderReorder(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "s", NumVertices: 80, NumEdges: 300,
		Communities: 5, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 6, EdgeSizeMean: 4, Seed: 71})
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		p, err := Sample(h, 3, 2, 18, rng)
		if err != nil {
			t.Fatal(err)
		}
		base := ShapeOf(p).Key()
		orders := [][]int{{1, 0, 2}, {2, 1, 0}, {1, 2, 0}}
		for _, ord := range orders {
			rp, err := p.Reorder(ord)
			if err != nil {
				t.Fatal(err)
			}
			if got := ShapeOf(rp).Key(); got != base {
				t.Fatalf("shape changed under reorder %v: %s vs %s (pattern %s)", ord, got, base, p)
			}
		}
	}
}

func TestShapeAccessors(t *testing.T) {
	shapes, err := EnumerateShapes(2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shapes {
		if s.NumVertices() < 1 || s.NumVertices() > 4 {
			t.Fatalf("%s vertices %d", s, s.NumVertices())
		}
		if s.String() == "" || s.Key() == "" {
			t.Fatal("empty rendering")
		}
	}
}
