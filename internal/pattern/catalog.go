package pattern

import "fmt"

// Parametric pattern families. These are the recurring query shapes of the
// HPM literature (chains of collaborations, star co-memberships, cliques of
// mutually overlapping groups) as ready-made constructors, so applications
// don't hand-write vertex lists for standard queries.

// Chain returns k hyperedges of the given size where consecutive hyperedges
// share exactly `overlap` vertices and non-consecutive ones are disjoint.
func Chain(k, size, overlap int) (*Pattern, error) {
	if k < 1 || size < 1 || overlap < 0 || overlap >= size {
		return nil, fmt.Errorf("pattern: invalid chain(k=%d, size=%d, overlap=%d)", k, size, overlap)
	}
	if k > 1 && overlap == 0 {
		return nil, fmt.Errorf("pattern: chain with overlap 0 is disconnected")
	}
	edges := make([][]uint32, k)
	next := uint32(0)
	var prevTail []uint32
	for i := 0; i < k; i++ {
		e := append([]uint32(nil), prevTail...)
		for len(e) < size {
			e = append(e, next)
			next++
		}
		edges[i] = e
		prevTail = append([]uint32(nil), e[len(e)-overlap:]...)
	}
	return New(edges, nil)
}

// Star returns k leaf hyperedges of the given size that all share the same
// `core` vertices and are otherwise disjoint (the "ego" query: everything
// touching one group).
func Star(k, size, core int) (*Pattern, error) {
	if k < 1 || size < 1 || core < 1 || core > size {
		return nil, fmt.Errorf("pattern: invalid star(k=%d, size=%d, core=%d)", k, size, core)
	}
	if k > 1 && core == size {
		return nil, fmt.Errorf("pattern: star leaves would be identical hyperedges")
	}
	coreVerts := make([]uint32, core)
	for i := range coreVerts {
		coreVerts[i] = uint32(i)
	}
	next := uint32(core)
	edges := make([][]uint32, k)
	for i := 0; i < k; i++ {
		e := append([]uint32(nil), coreVerts...)
		for len(e) < size {
			e = append(e, next)
			next++
		}
		edges[i] = e
	}
	return New(edges, nil)
}

// Cycle returns k ≥ 3 hyperedges of the given size arranged in a ring:
// hyperedge i shares `overlap` vertices with hyperedge (i+1) mod k and is
// disjoint from the rest.
func Cycle(k, size, overlap int) (*Pattern, error) {
	if k < 3 || overlap < 1 || size < 2*overlap {
		return nil, fmt.Errorf("pattern: invalid cycle(k=%d, size=%d, overlap=%d): need k≥3 and size≥2·overlap", k, size, overlap)
	}
	// Shared blocks s_0..s_{k-1}; hyperedge i = s_i ∪ s_{i+1 mod k} ∪ own.
	shared := make([][]uint32, k)
	next := uint32(0)
	for i := range shared {
		for j := 0; j < overlap; j++ {
			shared[i] = append(shared[i], next)
			next++
		}
	}
	edges := make([][]uint32, k)
	for i := 0; i < k; i++ {
		e := append([]uint32(nil), shared[i]...)
		e = append(e, shared[(i+1)%k]...)
		for len(e) < size {
			e = append(e, next)
			next++
		}
		edges[i] = e
	}
	return New(edges, nil)
}

// Nested returns a tower of k hyperedges where each is a strict subset of
// the previous: sizes size, size-step, size-2·step, ….
func Nested(k, size, step int) (*Pattern, error) {
	if k < 1 || step < 1 || size-(k-1)*step < 1 {
		return nil, fmt.Errorf("pattern: invalid nested(k=%d, size=%d, step=%d)", k, size, step)
	}
	edges := make([][]uint32, k)
	for i := 0; i < k; i++ {
		sz := size - i*step
		e := make([]uint32, sz)
		for j := range e {
			e[j] = uint32(j)
		}
		edges[i] = e
	}
	return New(edges, nil)
}

// Clique returns k hyperedges of the given size that all share one common
// block of `core` vertices (every pair overlaps — a dense pattern in the
// Sec. 5.5 sense).
func Clique(k, size, core int) (*Pattern, error) {
	return Star(k, size, core) // structurally identical construction
}
