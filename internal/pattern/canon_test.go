package pattern

import (
	"reflect"
	"testing"
)

func mustParse(t *testing.T, lit string) *Pattern {
	t.Helper()
	p, err := Parse(lit)
	if err != nil {
		t.Fatalf("parse %q: %v", lit, err)
	}
	return p
}

// TestCanonicalKeyIsomorphic: every way of writing the same pattern — edge
// order permuted, vertices renamed — canonicalizes to the same key and the
// same canonical pattern; structurally different patterns do not.
func TestCanonicalKeyIsomorphic(t *testing.T) {
	classes := [][]string{
		{"0 1; 1 2", "3 4; 4 5", "1 2; 0 1", "7 0; 0 3"},
		{"0 1 2; 2 3 4; 4 5 0", "4 5 0; 0 1 2; 2 3 4", "10 11 12; 12 13 14; 14 15 10"},
		{"0 1 2 3; 2 3 4 5", "4 5 0 1; 0 1 2 3"},
		{"0 1; 1 2; 2 0", "5 3; 3 4; 4 5"},
	}
	keys := make([]string, len(classes))
	for ci, lits := range classes {
		var canon *Pattern
		for li, lit := range lits {
			p := mustParse(t, lit)
			key, ok := CanonicalKey(p)
			if !ok {
				t.Fatalf("class %d literal %q: canonicalization refused", ci, lit)
			}
			cp, ok := Canonical(p)
			if !ok {
				t.Fatalf("class %d literal %q: Canonical refused", ci, lit)
			}
			if li == 0 {
				keys[ci] = key
				canon = cp
				continue
			}
			if key != keys[ci] {
				t.Errorf("class %d: %q and %q are isomorphic but keys differ", ci, lits[0], lit)
			}
			if cp.String() != canon.String() {
				t.Errorf("class %d: canonical forms differ: %q vs %q", ci, canon, cp)
			}
		}
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[i] == keys[j] {
				t.Errorf("classes %d and %d are not isomorphic but share a key", i, j)
			}
		}
	}
}

// TestCanonicalIdempotent: the canonical form is a fixed point.
func TestCanonicalIdempotent(t *testing.T) {
	for _, lit := range []string{"0 1; 1 2", "0 1 2; 2 3 4; 4 5 0", "0 1; 1 2; 2 3; 3 0"} {
		p := mustParse(t, lit)
		cp, ok := Canonical(p)
		if !ok {
			t.Fatalf("%q: refused", lit)
		}
		cp2, ok := Canonical(cp)
		if !ok || cp2.String() != cp.String() {
			t.Errorf("%q: Canonical not idempotent: %q -> %q", lit, cp, cp2)
		}
		k1, _ := CanonicalKey(p)
		k2, _ := CanonicalKey(cp)
		if k1 != k2 {
			t.Errorf("%q: key changes under canonicalization", lit)
		}
	}
}

// TestCanonicalMatchesShape: for unlabeled patterns the canonical form
// coincides with the ShapeOf realization — the two canonical constructions
// agree, so shape keys and canonical keys induce the same classes.
func TestCanonicalMatchesShape(t *testing.T) {
	shapes, err := EnumerateShapes(3, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shapes {
		p, err := s.Pattern()
		if err != nil {
			t.Fatal(err)
		}
		cp, ok := Canonical(p)
		if !ok {
			t.Fatalf("shape %s: canonicalization refused", s.Key())
		}
		if cp.String() != p.String() {
			t.Errorf("shape %s: canonical %q differs from shape realization %q", s.Key(), cp, p)
		}
	}
}

// TestCanonicalLabeled: vertex labels split isomorphism classes — a
// label-preserving renaming keeps the key, a label change breaks it — and
// full 32-bit labels are distinguished (257 vs 1 differ past the low byte).
func TestCanonicalLabeled(t *testing.T) {
	mk := func(edges [][]uint32, labels []uint32) *Pattern {
		p, err := New(edges, labels)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := mk([][]uint32{{0, 1}, {1, 2}}, []uint32{5, 9, 5})
	b := mk([][]uint32{{2, 1}, {1, 0}}, []uint32{5, 9, 5})   // renamed, same labeling
	c := mk([][]uint32{{0, 1}, {1, 2}}, []uint32{5, 9, 261}) // 261 = 5+256
	ka, ok := CanonicalKey(a)
	if !ok {
		t.Fatal("labeled canonicalization refused")
	}
	kb, _ := CanonicalKey(b)
	kc, _ := CanonicalKey(c)
	if ka != kb {
		t.Error("label-preserving isomorphs got different keys")
	}
	if ka == kc {
		t.Error("labels 5 and 261 collided on the canonical key")
	}

	el1, err := NewEdgeLabeled([][]uint32{{0, 1}, {1, 2}}, nil, []uint32{7, 3})
	if err != nil {
		t.Fatal(err)
	}
	el2, err := NewEdgeLabeled([][]uint32{{1, 2}, {0, 1}}, nil, []uint32{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	k1, ok := CanonicalKey(el1)
	if !ok {
		t.Fatal("edge-labeled canonicalization refused")
	}
	k2, _ := CanonicalKey(el2)
	if k1 != k2 {
		t.Error("edge-label-preserving permutation got different keys")
	}
}

// TestCanonicalBeyondMaxEdges: patterns past the K! bound fall back to
// literal identity.
func TestCanonicalBeyondMaxEdges(t *testing.T) {
	edges := make([][]uint32, CanonMaxEdges+1)
	for i := range edges {
		edges[i] = []uint32{uint32(i), uint32(i + 1)}
	}
	p, err := New(edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Canonical(p); ok {
		t.Errorf("Canonical accepted %d hyperedges (bound %d)", len(edges), CanonMaxEdges)
	}
	if _, ok := CanonicalKey(p); ok {
		t.Error("CanonicalKey accepted a pattern beyond the bound")
	}
}

// TestSymmetryRestrictions: the stabilizer chain on concrete patterns. The
// chain2 pattern (Aut=2, swap) breaks with c0<c1; the triangle of pairwise
// overlapping 2-edges (Aut=6, full S3) chains c0<c1<c2; an asymmetric chain
// emits nothing.
func TestSymmetryRestrictions(t *testing.T) {
	cases := []struct {
		lit  string
		want [][]int
	}{
		{"0 1; 1 2", [][]int{nil, {0}}},
		{"0 1; 1 2; 2 0", [][]int{nil, {0}, {0, 1}}},
		{"0 1 2; 2 3; 3 4", [][]int{nil, nil, nil}},
	}
	for _, tc := range cases {
		p := mustParse(t, tc.lit)
		got := p.SymmetryRestrictions()
		if len(got) != len(tc.want) {
			t.Fatalf("%q: %d positions, want %d", tc.lit, len(got), len(tc.want))
		}
		for i := range got {
			if len(got[i]) == 0 && len(tc.want[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got[i], tc.want[i]) {
				t.Errorf("%q position %d: restrictions %v, want %v", tc.lit, i, got[i], tc.want[i])
			}
		}
	}
}

// TestRestrictionsFromPermsWide: the helper is defined over arbitrary
// position counts; a transposition of positions 35 and 36 in a 40-position
// group must yield exactly c35<c36 — this is the regression test for the
// orbit bookkeeping that a 32-bit mask would have silently wrapped.
func TestRestrictionsFromPermsWide(t *testing.T) {
	const m = 40
	id := make([]int, m)
	swap := make([]int, m)
	for i := range id {
		id[i] = i
		swap[i] = i
	}
	swap[35], swap[36] = 36, 35
	got := restrictionsFromPerms(m, [][]int{id, swap})
	for i, rs := range got {
		switch i {
		case 36:
			if !reflect.DeepEqual(rs, []int{35}) {
				t.Errorf("position 36: restrictions %v, want [35]", rs)
			}
		default:
			if len(rs) != 0 {
				t.Errorf("position %d: unexpected restrictions %v", i, rs)
			}
		}
	}

	// A 3-cycle over {10, 20, 30} plus its square: one orbit anchored at 10,
	// both other members restricted against it, then the stabilizer of 10 is
	// trivial.
	rot := make([]int, m)
	rot2 := make([]int, m)
	copy(rot, id)
	copy(rot2, id)
	rot[10], rot[20], rot[30] = 20, 30, 10
	rot2[10], rot2[20], rot2[30] = 30, 10, 20
	got = restrictionsFromPerms(m, [][]int{id, rot, rot2})
	if !reflect.DeepEqual(got[20], []int{10}) || !reflect.DeepEqual(got[30], []int{10}) {
		t.Errorf("3-cycle: got %v/%v at 20/30, want [10]/[10]", got[20], got[30])
	}
}
