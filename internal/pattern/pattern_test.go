package pattern

import (
	"errors"
	"math/rand"
	"testing"

	"ohminer/internal/gen"
	"ohminer/internal/intset"
)

// fig1Pattern is the pattern of Figure 1(a): pe1 (6 verts), pe2 (6 verts),
// pe3 (8 verts) with |pe1∩pe2|=|pe1∩pe3|=|pe1∩pe2∩pe3|=3, |pe2∩pe3|=5.
func fig1Pattern(t *testing.T) *Pattern {
	t.Helper()
	p, err := New([][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewBasics(t *testing.T) {
	p := fig1Pattern(t)
	if p.NumEdges() != 3 || p.NumVertices() != 12 {
		t.Fatalf("%d edges, %d vertices", p.NumEdges(), p.NumVertices())
	}
	if p.Degree(2) != 8 {
		t.Fatalf("Degree(2)=%d", p.Degree(2))
	}
	s := p.Signature()
	if s.Size(0b011) != 3 || s.Size(0b110) != 5 || s.Size(0b111) != 3 {
		t.Fatalf("signature: %v", s.Sizes)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := New([][]uint32{{0, 1}, {}}, nil); err == nil {
		t.Error("empty edge accepted")
	}
	if _, err := New([][]uint32{{0, 1}, {2, 3}}, nil); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected: %v", err)
	}
	if _, err := New([][]uint32{{0, 1}, {1, 0}}, nil); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := New([][]uint32{{0, 1}}, []uint32{0}); err == nil {
		t.Error("short labels accepted")
	}
}

func TestParseAndString(t *testing.T) {
	p, err := Parse("0 1 2; 2,3; 3 4 5")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() != 3 || p.NumVertices() != 6 {
		t.Fatalf("parsed %s", p)
	}
	rt, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Signature().Equal(p.Signature()) {
		t.Fatal("String/Parse roundtrip changed the pattern")
	}
	if _, err := Parse("0 x"); err == nil {
		t.Error("bad literal accepted")
	}
}

func TestMatchingOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 120, NumEdges: 300,
		Communities: 8, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 8, EdgeSizeMean: 4, Seed: 21})
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(4)
		p, err := Sample(h, m, 2, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		order := p.MatchingOrder()
		if len(order) != p.NumEdges() {
			t.Fatalf("order %v for %d edges", order, p.NumEdges())
		}
		// Every prefix must stay connected: edge order[i] shares a vertex
		// with some earlier edge.
		for i := 1; i < len(order); i++ {
			ok := false
			for j := 0; j < i; j++ {
				if intset.Intersects(p.Edge(order[i]), p.Edge(order[j])) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("matching order %v breaks connectivity at %d (pattern %s)", order, i, p)
			}
		}
		// Reorder must preserve the structure (signature up to permutation).
		rp, err := p.Reorder(order)
		if err != nil {
			t.Fatal(err)
		}
		if rp.NumEdges() != p.NumEdges() || rp.NumVertices() != p.NumVertices() {
			t.Fatal("Reorder changed shape")
		}
	}
}

func TestReorderValidation(t *testing.T) {
	p := fig1Pattern(t)
	if _, err := p.Reorder([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := p.Reorder([]int{0, 0, 1}); err == nil {
		t.Error("repeated index accepted")
	}
	if _, err := p.Reorder([]int{0, 1, 5}); err == nil {
		t.Error("out-of-range index accepted")
	}
	rp, err := p.Reorder([]int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Degree(0) != 8 {
		t.Fatal("Reorder did not move edges")
	}
}

func TestAutomorphisms(t *testing.T) {
	// A "triangle" of 2-vertex hyperedges: every permutation preserves
	// structure except those breaking the shared-vertex pattern; each edge
	// pair overlaps in exactly 1 vertex and the triple overlap is empty, so
	// all 3! permutations are automorphisms.
	tri := MustNew([][]uint32{{0, 1}, {1, 2}, {0, 2}}, nil)
	if got := tri.Automorphisms(); got != 6 {
		t.Fatalf("triangle automorphisms=%d want 6", got)
	}
	// The Figure 1 pattern: pe1 and pe2 both have degree 6, but
	// |pe1∩pe3|=3 ≠ |pe2∩pe3|=5, so only the identity survives.
	p := fig1Pattern(t)
	if got := p.Automorphisms(); got != 1 {
		t.Fatalf("fig1 automorphisms=%d want 1", got)
	}
	// A path of three edges where the ends are symmetric.
	path := MustNew([][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil)
	if got := path.Automorphisms(); got != 2 {
		t.Fatalf("path automorphisms=%d want 2", got)
	}
}

func TestAutomorphismsLabeled(t *testing.T) {
	// Same path; labels break the end symmetry.
	labeled := MustNew([][]uint32{{0, 1}, {1, 2}, {2, 3}}, []uint32{0, 1, 1, 1})
	if got := labeled.Automorphisms(); got != 1 {
		t.Fatalf("labeled path automorphisms=%d want 1", got)
	}
	sym := MustNew([][]uint32{{0, 1}, {1, 2}, {2, 3}}, []uint32{0, 1, 1, 0})
	if got := sym.Automorphisms(); got != 2 {
		t.Fatalf("symmetric labeled path automorphisms=%d want 2", got)
	}
}

func TestSampleRespectsBounds(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 200, NumEdges: 500,
		Communities: 10, MemberOverlap: 1, EdgeSizeMin: 3, EdgeSizeMax: 10, EdgeSizeMean: 5, Seed: 31})
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		p, err := Sample(h, 3, 6, 25, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumEdges() != 3 {
			t.Fatalf("NumEdges=%d", p.NumEdges())
		}
		if p.NumVertices() < 6 || p.NumVertices() > 25 {
			t.Fatalf("NumVertices=%d outside [6,25]", p.NumVertices())
		}
	}
}

func TestSampleDenseAllPairsOverlap(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 150, NumEdges: 600,
		Communities: 6, MemberOverlap: 1.5, EdgeSizeMin: 4, EdgeSizeMax: 12, EdgeSizeMean: 7, Seed: 32})
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		p, err := SampleDense(h, 4, 4, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p.NumEdges(); i++ {
			for j := i + 1; j < p.NumEdges(); j++ {
				if !intset.Intersects(p.Edge(i), p.Edge(j)) {
					t.Fatalf("dense pattern %s has disconnected pair (%d,%d)", p, i, j)
				}
			}
		}
	}
}

func TestSampleImpossible(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 10, NumEdges: 5,
		Communities: 1, EdgeSizeMin: 2, EdgeSizeMax: 3, EdgeSizeMean: 2.5, Seed: 33})
	rng := rand.New(rand.NewSource(11))
	if _, err := Sample(h, 3, 100, 200, rng); err == nil {
		t.Fatal("impossible vertex range accepted")
	}
}

func TestSampleSetAndSettings(t *testing.T) {
	settings := Settings()
	if len(settings) != 5 || settings[0].NumEdges != 2 || settings[4].NumEdges != 6 {
		t.Fatalf("settings: %+v", settings)
	}
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 300, NumEdges: 900,
		Communities: 12, MemberOverlap: 1.2, EdgeSizeMin: 3, EdgeSizeMax: 12, EdgeSizeMean: 6, Seed: 34})
	ps, err := SampleSet(h, settings[1], 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != settings[1].Count {
		t.Fatalf("got %d patterns", len(ps))
	}
	// Determinism.
	ps2, err := SampleSet(h, settings[1], 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if ps[i].String() != ps2[i].String() {
			t.Fatal("SampleSet not deterministic")
		}
	}
}

func TestSampleInheritsLabels(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 200, NumEdges: 400,
		Communities: 8, MemberOverlap: 1, EdgeSizeMin: 3, EdgeSizeMax: 8, EdgeSizeMean: 5,
		NumLabels: 4, Seed: 35})
	rng := rand.New(rand.NewSource(12))
	p, err := Sample(h, 3, 4, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Labeled() {
		t.Fatal("sampled pattern lost labels")
	}
	if _, err := p.LabelSignature(); err != nil {
		t.Fatal(err)
	}
}
