// Package pattern defines pattern hypergraphs and the workload machinery of
// the paper's evaluation: literal patterns, random patterns sampled from a
// data hypergraph (Table 4), dense patterns (Sec. 5.5), the matching-order
// heuristic, and automorphism counting.
//
// A pattern's vertices are dense IDs 0..NumVertices-1 local to the pattern.
// Hyperedges are sorted vertex sets. Patterns must be connected (the
// matching order extends a connected prefix) and must not contain duplicate
// hyperedges (a data hypergraph is deduplicated, so such a pattern has no
// embeddings by construction).
package pattern

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ohminer/internal/intset"
	"ohminer/internal/sig"
)

// Pattern is an immutable pattern hypergraph.
type Pattern struct {
	edges       [][]uint32
	labels      []uint32 // per pattern-vertex label; nil when unlabeled
	edgeLabels  []uint32 // per-hyperedge label; nil when unlabeled
	numVertices int
	signature   sig.Signature
}

// Common construction errors.
var (
	ErrDisconnected = errors.New("pattern: hyperedges do not form a connected pattern")
	ErrDuplicate    = errors.New("pattern: duplicate hyperedge")
)

// New builds a pattern from hyperedge vertex lists (any order, duplicates
// within an edge removed). labels, when non-nil, assigns a label to every
// pattern vertex referenced by the edges.
func New(edges [][]uint32, labels []uint32) (*Pattern, error) {
	return NewEdgeLabeled(edges, labels, nil)
}

// NewEdgeLabeled is New for hyperedge-labeled patterns (the Sec. 4.3.1
// extension): edgeLabels assigns a label to every pattern hyperedge, which
// the engine matches against data hyperedge labels during candidate
// generation. Identical vertex sets with different edge labels are distinct
// hyperedges.
func NewEdgeLabeled(edges [][]uint32, labels, edgeLabels []uint32) (*Pattern, error) {
	if len(edges) == 0 {
		return nil, errors.New("pattern: no hyperedges")
	}
	if len(edges) > sig.MaxEdges {
		return nil, fmt.Errorf("pattern: %d hyperedges exceeds limit %d", len(edges), sig.MaxEdges)
	}
	p := &Pattern{edges: make([][]uint32, len(edges))}
	maxV := -1
	for i, raw := range edges {
		if len(raw) == 0 {
			return nil, fmt.Errorf("pattern: hyperedge %d is empty", i)
		}
		e := append([]uint32(nil), raw...)
		sort.Slice(e, func(a, b int) bool { return e[a] < e[b] })
		w := 1
		for k := 1; k < len(e); k++ {
			if e[k] != e[w-1] {
				e[w] = e[k]
				w++
			}
		}
		p.edges[i] = e[:w]
		if int(e[w-1]) > maxV {
			maxV = int(e[w-1])
		}
	}
	p.numVertices = maxV + 1
	if edgeLabels != nil {
		if len(edgeLabels) != len(edges) {
			return nil, fmt.Errorf("pattern: %d edge labels for %d hyperedges", len(edgeLabels), len(edges))
		}
		p.edgeLabels = append([]uint32(nil), edgeLabels...)
	}
	for i := 0; i < len(p.edges); i++ {
		for j := i + 1; j < len(p.edges); j++ {
			if intset.Equal(p.edges[i], p.edges[j]) && p.edgeLabel(i) == p.edgeLabel(j) {
				return nil, fmt.Errorf("%w: edges %d and %d", ErrDuplicate, i, j)
			}
		}
	}
	if !connected(p.edges) {
		return nil, ErrDisconnected
	}
	if labels != nil {
		if len(labels) != p.numVertices {
			return nil, fmt.Errorf("pattern: %d labels for %d vertices", len(labels), p.numVertices)
		}
		p.labels = append([]uint32(nil), labels...)
	}
	s, err := sig.Compute(p.edges)
	if err != nil {
		return nil, err
	}
	p.signature = s
	return p, nil
}

// MustNew is New that panics on error (literals in tests and examples).
func MustNew(edges [][]uint32, labels []uint32) *Pattern {
	p, err := New(edges, labels)
	if err != nil {
		panic(err)
	}
	return p
}

// Parse reads a pattern literal: hyperedges separated by ';', vertex IDs by
// whitespace or commas, e.g. "0 1 2; 2 3; 3 4 5".
func Parse(s string) (*Pattern, error) {
	parts := strings.Split(s, ";")
	edges := make([][]uint32, 0, len(parts))
	for _, part := range parts {
		fields := strings.FieldsFunc(part, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
		if len(fields) == 0 {
			continue
		}
		edge := make([]uint32, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("pattern: %q: %v", f, err)
			}
			edge = append(edge, uint32(v))
		}
		edges = append(edges, edge)
	}
	return New(edges, nil)
}

// NumEdges returns the number of hyperedges.
func (p *Pattern) NumEdges() int { return len(p.edges) }

// NumVertices returns the number of pattern vertices.
func (p *Pattern) NumVertices() int { return p.numVertices }

// Edge returns the sorted vertex list of hyperedge i (aliases internal
// storage).
func (p *Pattern) Edge(i int) []uint32 { return p.edges[i] }

// Edges returns all hyperedges (aliases internal storage).
func (p *Pattern) Edges() [][]uint32 { return p.edges }

// Degree returns the size of hyperedge i.
func (p *Pattern) Degree(i int) int { return len(p.edges[i]) }

// Labeled reports whether the pattern carries vertex labels.
func (p *Pattern) Labeled() bool { return p.labels != nil }

// EdgeLabeled reports whether the pattern carries hyperedge labels.
func (p *Pattern) EdgeLabeled() bool { return p.edgeLabels != nil }

// EdgeLabel returns the label of hyperedge i; it panics when hyperedges are
// unlabeled.
func (p *Pattern) EdgeLabel(i int) uint32 { return p.edgeLabels[i] }

// edgeLabel is EdgeLabel defaulting to 0 for unlabeled patterns.
func (p *Pattern) edgeLabel(i int) uint32 {
	if p.edgeLabels == nil {
		return 0
	}
	return p.edgeLabels[i]
}

// Label returns the label of pattern vertex v.
func (p *Pattern) Label(v uint32) uint32 { return p.labels[v] }

// Signature returns the pattern's overlap signature (edges in stored
// order).
func (p *Pattern) Signature() sig.Signature { return p.signature }

// LabelSignature computes the labeled overlap signature. It errors when the
// pattern is unlabeled.
func (p *Pattern) LabelSignature() (sig.LabelSignature, error) {
	if !p.Labeled() {
		return sig.LabelSignature{}, errors.New("pattern: not labeled")
	}
	return sig.ComputeLabeled(p.edges, func(v uint32) uint32 { return p.labels[v] })
}

// String renders the pattern in Parse format.
func (p *Pattern) String() string {
	var b strings.Builder
	for i, e := range p.edges {
		if i > 0 {
			b.WriteString("; ")
		}
		for j, v := range e {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatUint(uint64(v), 10))
		}
	}
	return b.String()
}

// connected reports whether the hyperedges form one connected component
// (edges are nodes; sharing a vertex connects them).
func connected(edges [][]uint32) bool {
	m := len(edges)
	if m == 1 {
		return true
	}
	visited := make([]bool, m)
	stack := []int{0}
	visited[0] = true
	seen := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < m; j++ {
			if !visited[j] && intset.Intersects(edges[cur], edges[j]) {
				visited[j] = true
				seen++
				stack = append(stack, j)
			}
		}
	}
	return seen == m
}

// MatchingOrder returns a permutation of hyperedge indices: the matching
// order used by the compiler. Following HGMatch/Sec. 4.3.2, it starts from
// the hyperedge with the most pattern neighbors (tie: larger degree) and
// greedily appends the hyperedge most connected to the chosen prefix (tie:
// larger degree, then smaller index), so each extension is maximally
// constrained.
func (p *Pattern) MatchingOrder() []int {
	m := len(p.edges)
	conn := make([][]bool, m)
	neighborCount := make([]int, m)
	for i := range conn {
		conn[i] = make([]bool, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if intset.Intersects(p.edges[i], p.edges[j]) {
				conn[i][j], conn[j][i] = true, true
				neighborCount[i]++
				neighborCount[j]++
			}
		}
	}
	order := make([]int, 0, m)
	used := make([]bool, m)
	best := 0
	for i := 1; i < m; i++ {
		if neighborCount[i] > neighborCount[best] ||
			(neighborCount[i] == neighborCount[best] && len(p.edges[i]) > len(p.edges[best])) {
			best = i
		}
	}
	order = append(order, best)
	used[best] = true
	for len(order) < m {
		bestIdx, bestConn, bestDeg := -1, -1, -1
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			c := 0
			for _, o := range order {
				if conn[o][j] {
					c++
				}
			}
			if c > bestConn || (c == bestConn && len(p.edges[j]) > bestDeg) {
				bestIdx, bestConn, bestDeg = j, c, len(p.edges[j])
			}
		}
		order = append(order, bestIdx)
		used[bestIdx] = true
	}
	return order
}

// MatchingOrderWithSelectivity is MatchingOrder informed by data-hypergraph
// features (the HGMatch-style ordering the paper references in
// Sec. 4.3.2): sel[i] estimates the number of data candidates for hyperedge
// i (e.g. the count of data hyperedges sharing its degree). The first
// hyperedge is the most selective one — fewest candidates, so the parallel
// root fan-out is smallest — and the rest follow the greedy
// maximum-connectivity rule.
func (p *Pattern) MatchingOrderWithSelectivity(sel []int) []int {
	m := len(p.edges)
	if len(sel) != m {
		return p.MatchingOrder()
	}
	conn := make([][]bool, m)
	for i := range conn {
		conn[i] = make([]bool, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if intset.Intersects(p.edges[i], p.edges[j]) {
				conn[i][j], conn[j][i] = true, true
			}
		}
	}
	best := 0
	for i := 1; i < m; i++ {
		if sel[i] < sel[best] || (sel[i] == sel[best] && len(p.edges[i]) > len(p.edges[best])) {
			best = i
		}
	}
	order := []int{best}
	used := make([]bool, m)
	used[best] = true
	for len(order) < m {
		bestIdx, bestConn, bestSel := -1, -1, 0
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			c := 0
			for _, o := range order {
				if conn[o][j] {
					c++
				}
			}
			if c > bestConn || (c == bestConn && sel[j] < bestSel) {
				bestIdx, bestConn, bestSel = j, c, sel[j]
			}
		}
		order = append(order, bestIdx)
		used[bestIdx] = true
	}
	return order
}

// Reorder returns a new pattern whose hyperedges follow the given
// permutation (order[i] = index of the edge placed at position i). Vertex
// IDs and labels are unchanged.
func (p *Pattern) Reorder(order []int) (*Pattern, error) {
	if len(order) != len(p.edges) {
		return nil, fmt.Errorf("pattern: order length %d != %d edges", len(order), len(p.edges))
	}
	seen := make([]bool, len(order))
	edges := make([][]uint32, len(order))
	var edgeLabels []uint32
	if p.edgeLabels != nil {
		edgeLabels = make([]uint32, len(order))
	}
	for i, o := range order {
		if o < 0 || o >= len(p.edges) || seen[o] {
			return nil, fmt.Errorf("pattern: invalid permutation %v", order)
		}
		seen[o] = true
		edges[i] = p.edges[o]
		if edgeLabels != nil {
			edgeLabels[i] = p.edgeLabels[o]
		}
	}
	return NewEdgeLabeled(edges, p.labels, edgeLabels)
}

// Automorphisms counts hyperedge permutations π such that the permuted
// pattern is isomorphic to the original (equal overlap signatures — Theorem
// 1 — and, for labeled patterns, equal label signatures). Every unordered
// embedding is discovered once per automorphism by an unrestricted ordered
// miner, so unique-count = ordered-count / Automorphisms() for complete
// runs; symmetry-broken plans (SymmetryRestrictions) instead count each
// unordered embedding directly.
func (p *Pattern) Automorphisms() int {
	return len(p.AutomorphismPerms())
}

// The automorphism search tracks used hyperedge positions in a uint64
// bitmask, so it is only correct for patterns of at most 64 hyperedges.
// Every constructible Pattern is bounded far below that by sig.MaxEdges
// (NewEdgeLabeled rejects larger inputs with a clear error); this
// compile-time assertion fails the build if the signature bound ever grows
// past the mask width instead of letting 1<<j wrap silently.
const _ = uint(64 - sig.MaxEdges)

// AutomorphismPerms returns the hyperedge automorphism group as explicit
// permutations (perm[i] = original index placed at position i). The
// identity is always first.
func (p *Pattern) AutomorphismPerms() [][]int {
	m := len(p.edges)
	var labelSig sig.LabelSignature
	if p.Labeled() {
		labelSig, _ = p.LabelSignature()
	}
	perm := make([]int, m)
	used := uint64(0)
	var perms [][]int
	var rec func(pos int)
	rec = func(pos int) {
		if pos == m {
			if !p.signature.Permute(perm).Equal(p.signature) {
				return
			}
			if p.Labeled() && !labelPermEqual(labelSig, perm) {
				return
			}
			perms = append(perms, append([]int(nil), perm...))
			return
		}
		for j := 0; j < m; j++ {
			if used&(1<<uint(j)) != 0 || len(p.edges[j]) != len(p.edges[pos]) ||
				p.edgeLabel(j) != p.edgeLabel(pos) {
				continue
			}
			perm[pos] = j
			used |= 1 << uint(j)
			rec(pos + 1)
			used &^= 1 << uint(j)
		}
	}
	rec(0)
	// The identity is found first by construction (j ascending), but make
	// the invariant explicit for callers.
	for i, pm := range perms {
		if isIdentity(pm) && i != 0 {
			perms[0], perms[i] = perms[i], perms[0]
			break
		}
	}
	return perms
}

func isIdentity(perm []int) bool {
	for i, v := range perm {
		if i != v {
			return false
		}
	}
	return true
}

// labelPermEqual checks that the permuted label signature matches the
// original: for every mask, the label histogram of the permuted subset must
// equal the original's.
func labelPermEqual(ls sig.LabelSignature, perm []int) bool {
	m := ls.M
	for mask := 1; mask < 1<<m; mask++ {
		var orig uint32
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				orig |= 1 << uint(perm[i])
			}
		}
		a, b := ls.Counts[mask], ls.Counts[orig]
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if a[k] != b[k] {
				return false
			}
		}
	}
	return true
}
