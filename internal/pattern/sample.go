package pattern

import (
	"fmt"
	"math/rand"

	"ohminer/internal/hypergraph"
	"ohminer/internal/intset"
)

// NewRand builds a deterministic RNG for pattern sampling.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Setting mirrors one row of Table 4: a pattern family P_i with |E|
// hyperedges and a vertex-count range.
type Setting struct {
	Name     string
	NumEdges int
	VertMin  int
	VertMax  int
	Count    int // patterns sampled per setting (5 in the paper)
}

// Settings returns the Table 4 pattern settings P2–P6.
func Settings() []Setting {
	return []Setting{
		{Name: "P2", NumEdges: 2, VertMin: 5, VertMax: 15, Count: 5},
		{Name: "P3", NumEdges: 3, VertMin: 10, VertMax: 20, Count: 5},
		{Name: "P4", NumEdges: 4, VertMin: 10, VertMax: 30, Count: 5},
		{Name: "P5", NumEdges: 5, VertMin: 15, VertMax: 35, Count: 5},
		{Name: "P6", NumEdges: 6, VertMin: 15, VertMax: 40, Count: 5},
	}
}

// Sample draws a random connected pattern with numEdges hyperedges from the
// data hypergraph h, with the union vertex count confined to
// [vertMin, vertMax] — the paper's workload methodology (Sec. 5.1): start
// from a random hyperedge and repeatedly add a hyperedge adjacent to an
// already-chosen one. Sampled hyperedges are re-labeled to dense pattern
// vertex IDs; when h is labeled the pattern inherits the vertex labels.
//
// Sample retries up to maxTries sub-hypergraph draws and returns an error
// when h cannot host such a pattern.
func Sample(h *hypergraph.Hypergraph, numEdges, vertMin, vertMax int, rng *rand.Rand) (*Pattern, error) {
	const maxTries = 2000
	for try := 0; try < maxTries; try++ {
		edges, ok := sampleEdges(h, numEdges, vertMax, rng, false)
		if !ok {
			continue
		}
		p, ok := finishSample(h, edges, vertMin, vertMax)
		if !ok {
			continue
		}
		return p, nil
	}
	return nil, fmt.Errorf("pattern: could not sample a %d-edge pattern with %d..%d vertices", numEdges, vertMin, vertMax)
}

// SampleDense draws a pattern in which every pair of hyperedges overlaps
// (the dense patterns of Sec. 5.5).
func SampleDense(h *hypergraph.Hypergraph, numEdges, vertMin, vertMax int, rng *rand.Rand) (*Pattern, error) {
	const maxTries = 4000
	for try := 0; try < maxTries; try++ {
		edges, ok := sampleEdges(h, numEdges, vertMax, rng, true)
		if !ok {
			continue
		}
		p, ok := finishSample(h, edges, vertMin, vertMax)
		if !ok {
			continue
		}
		return p, nil
	}
	return nil, fmt.Errorf("pattern: could not sample a dense %d-edge pattern with %d..%d vertices", numEdges, vertMin, vertMax)
}

// sampleEdges grows a set of distinct hyperedge IDs: each new edge must be
// adjacent to a previous one (dense: to all previous ones) and keep the
// union vertex count within vertMax.
func sampleEdges(h *hypergraph.Hypergraph, numEdges, vertMax int, rng *rand.Rand, dense bool) ([]uint32, bool) {
	first := uint32(rng.Intn(h.NumEdges()))
	chosen := []uint32{first}
	union := append([]uint32(nil), h.EdgeVertices(first)...)
	if len(union) > vertMax {
		return nil, false
	}
	for len(chosen) < numEdges {
		// Pick a random already-chosen edge, then a random vertex of it,
		// then a random incident edge — a cheap adjacent-edge draw.
		base := chosen[rng.Intn(len(chosen))]
		bv := h.EdgeVertices(base)
		v := bv[rng.Intn(len(bv))]
		inc := h.VertexEdges(v)
		cand := inc[rng.Intn(len(inc))]
		dup := false
		for _, c := range chosen {
			if c == cand {
				dup = true
				break
			}
		}
		if dup {
			// A few duplicate draws are expected; give up on this attempt
			// only with small probability to avoid livelock on tiny graphs.
			if rng.Intn(8) == 0 {
				return nil, false
			}
			continue
		}
		if dense {
			ok := true
			for _, c := range chosen {
				if !intset.Intersects(h.EdgeVertices(c), h.EdgeVertices(cand)) {
					ok = false
					break
				}
			}
			if !ok {
				if rng.Intn(8) == 0 {
					return nil, false
				}
				continue
			}
		}
		newUnion := intset.Union(union, h.EdgeVertices(cand), nil)
		if len(newUnion) > vertMax {
			if rng.Intn(4) == 0 {
				return nil, false
			}
			continue
		}
		union = newUnion
		chosen = append(chosen, cand)
	}
	return chosen, true
}

// finishSample relabels the sampled hyperedges into a Pattern and applies
// the vertex-range and validity filters.
func finishSample(h *hypergraph.Hypergraph, edgeIDs []uint32, vertMin, vertMax int) (*Pattern, bool) {
	remap := map[uint32]uint32{}
	var edges [][]uint32
	for _, e := range edgeIDs {
		verts := h.EdgeVertices(e)
		edge := make([]uint32, 0, len(verts))
		for _, v := range verts {
			id, ok := remap[v]
			if !ok {
				id = uint32(len(remap))
				remap[v] = id
			}
			edge = append(edge, id)
		}
		edges = append(edges, edge)
	}
	if len(remap) < vertMin || len(remap) > vertMax {
		return nil, false
	}
	var labels []uint32
	if h.Labeled() {
		labels = make([]uint32, len(remap))
		for orig, id := range remap {
			labels[id] = h.Label(orig)
		}
	}
	p, err := New(edges, labels)
	if err != nil {
		return nil, false // duplicate edges sampled; retry
	}
	return p, true
}

// SampleSet draws setting.Count patterns for one Table 4 setting,
// deterministically from seed.
func SampleSet(h *hypergraph.Hypergraph, setting Setting, seed int64) ([]*Pattern, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Pattern, 0, setting.Count)
	for len(out) < setting.Count {
		p, err := Sample(h, setting.NumEdges, setting.VertMin, setting.VertMax, rng)
		if err != nil {
			return nil, fmt.Errorf("pattern: setting %s: %w", setting.Name, err)
		}
		out = append(out, p)
	}
	return out, nil
}
