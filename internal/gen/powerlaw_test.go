package gen

import (
	"sort"
	"testing"
)

// TestPowerLawSkewsVertexDegrees: power-law community popularity must
// concentrate incidence on few vertices relative to the uniform generator —
// the WT/TC-vs-others distinction the paper notes.
func TestPowerLawSkewsVertexDegrees(t *testing.T) {
	base := Config{Name: "pl", NumVertices: 3000, NumEdges: 6000, Communities: 150,
		MemberOverlap: 0.8, EdgeSizeMin: 2, EdgeSizeMax: 10, EdgeSizeMean: 4, Seed: 5}
	uniform := MustGenerate(base)
	pl := base
	pl.PowerLaw = true
	skewed := MustGenerate(pl)

	top1Share := func(h interface {
		NumVertices() int
		VertexDegree(uint32) int
		TotalIncidence() int
	}) float64 {
		degs := make([]int, h.NumVertices())
		for v := range degs {
			degs[v] = h.VertexDegree(uint32(v))
		}
		sort.Sort(sort.Reverse(sort.IntSlice(degs)))
		top := 0
		cut := len(degs) / 100
		if cut == 0 {
			cut = 1
		}
		for _, d := range degs[:cut] {
			top += d
		}
		return float64(top) / float64(h.TotalIncidence())
	}
	u, s := top1Share(uniform), top1Share(skewed)
	if s <= u {
		t.Fatalf("power-law top-1%% incidence share %.3f not above uniform %.3f", s, u)
	}
}

// TestEdgeSizeDistributionMean: the truncated geometric sampler should land
// near the configured mean for a mid-range target.
func TestEdgeSizeDistributionMean(t *testing.T) {
	cfg := Config{Name: "m", NumVertices: 5000, NumEdges: 8000, Communities: 100,
		MemberOverlap: 0.5, EdgeSizeMin: 2, EdgeSizeMax: 30, EdgeSizeMean: 7, Seed: 6}
	h := MustGenerate(cfg)
	ad := h.AvgEdgeDegree()
	if ad < 5.5 || ad > 8.5 {
		t.Fatalf("AD=%.2f want ≈7", ad)
	}
}

func TestFixedEdgeSize(t *testing.T) {
	cfg := Config{Name: "f", NumVertices: 200, NumEdges: 300, Communities: 10,
		EdgeSizeMin: 4, EdgeSizeMax: 4, EdgeSizeMean: 4, Seed: 7}
	h := MustGenerate(cfg)
	for e := 0; e < h.NumEdges(); e++ {
		if h.Degree(uint32(e)) != 4 {
			t.Fatalf("edge %d degree %d", e, h.Degree(uint32(e)))
		}
	}
}
