// Package gen produces deterministic synthetic hypergraphs.
//
// The paper evaluates on eight public real-world hypergraphs (Table 3). This
// module is offline, so gen substitutes a community/affiliation generator
// whose presets (presets.go) match the published |V|, |E| and average
// hyperedge degree of each dataset, with the vertex-popularity skew chosen so
// that the WT/TC-style datasets exhibit the power-law tails the paper notes
// and the bill-voting datasets (SB/HB) exhibit dense hyperedge overlap.
//
// The model: vertices are partitioned into communities; each vertex may
// additionally join a few foreign communities (membership overlap). A
// hyperedge picks a community (Zipf-weighted when PowerLaw is set) and
// samples its vertices from that community's member list. Small dense
// communities yield heavily overlapping hyperedges, the regime where overlap
// similarity — the paper's key observation — dominates.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"ohminer/internal/hypergraph"
)

// Config parameterizes the synthetic generator.
type Config struct {
	Name          string  // dataset tag, for logs
	NumVertices   int     // |V|
	NumEdges      int     // |E| requested (duplicates are regenerated)
	Communities   int     // number of communities; smaller ⇒ denser overlap
	MemberOverlap float64 // expected extra community memberships per vertex
	EdgeSizeMin   int     // minimum hyperedge degree
	EdgeSizeMax   int     // maximum hyperedge degree
	EdgeSizeMean  float64 // target average hyperedge degree (AD in Table 3)
	PowerLaw      bool    // Zipf community popularity (power-law tails)
	NumLabels     int     // vertex label classes; 0 ⇒ unlabeled
	Seed          int64   // RNG seed; same Config ⇒ same hypergraph
}

// Validate reports configuration errors before generation.
func (c Config) Validate() error {
	switch {
	case c.NumVertices < 1:
		return fmt.Errorf("gen: NumVertices=%d", c.NumVertices)
	case c.NumEdges < 1:
		return fmt.Errorf("gen: NumEdges=%d", c.NumEdges)
	case c.Communities < 1:
		return fmt.Errorf("gen: Communities=%d", c.Communities)
	case c.EdgeSizeMin < 1 || c.EdgeSizeMax < c.EdgeSizeMin:
		return fmt.Errorf("gen: edge size bounds [%d,%d]", c.EdgeSizeMin, c.EdgeSizeMax)
	case c.EdgeSizeMean < float64(c.EdgeSizeMin) || c.EdgeSizeMean > float64(c.EdgeSizeMax):
		return fmt.Errorf("gen: EdgeSizeMean=%.2f outside [%d,%d]", c.EdgeSizeMean, c.EdgeSizeMin, c.EdgeSizeMax)
	}
	return nil
}

// Generate builds the hypergraph described by cfg. It is deterministic in
// cfg (including Seed).
func Generate(cfg Config) (*hypergraph.Hypergraph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	members := assignCommunities(cfg, rng)

	// Community pick weights: Zipf for power-law datasets, uniform else.
	weights := make([]float64, cfg.Communities)
	totalW := 0.0
	for c := range weights {
		if cfg.PowerLaw {
			weights[c] = 1 / math.Pow(float64(c+1), 1.1)
		} else {
			weights[c] = 1
		}
		totalW += weights[c]
	}
	cum := make([]float64, cfg.Communities)
	acc := 0.0
	for c, w := range weights {
		acc += w / totalW
		cum[c] = acc
	}
	pickCommunity := func() int {
		x := rng.Float64()
		lo, hi := 0, cfg.Communities-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	// Hyperedges are deduplicated during generation so that presets hit
	// their target |E| exactly (Build would otherwise silently shrink the
	// dataset). Saturated tiny configurations bail out after maxAttempts and
	// keep whatever was produced.
	edges := make([][]uint32, 0, cfg.NumEdges)
	seen := make(map[string]bool, cfg.NumEdges)
	scratch := map[uint32]bool{}
	var keyBuf []byte
	maxAttempts := 20 * cfg.NumEdges
	for attempts := 0; len(edges) < cfg.NumEdges && attempts < maxAttempts; attempts++ {
		com := members[pickCommunity()]
		size := sampleEdgeSize(cfg, rng)
		if size > len(com) {
			size = len(com)
		}
		if size < 1 {
			continue
		}
		for k := range scratch {
			delete(scratch, k)
		}
		edge := make([]uint32, 0, size)
		// Sample distinct vertices from the community.
		for tries := 0; len(edge) < size && tries < 8*size; tries++ {
			v := com[rng.Intn(len(com))]
			if !scratch[v] {
				scratch[v] = true
				edge = append(edge, v)
			}
		}
		if len(edge) == 0 {
			continue
		}
		sortU32(edge)
		keyBuf = keyBuf[:0]
		for _, v := range edge {
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		k := string(keyBuf)
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, edge)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("gen: %s: generator produced no edges", cfg.Name)
	}

	var labels []uint32
	if cfg.NumLabels > 0 {
		labels = make([]uint32, cfg.NumVertices)
		for v := range labels {
			// Zipf-skewed class sizes, as in typical labeled benchmarks.
			labels[v] = uint32(zipfPick(rng, cfg.NumLabels, 1.2))
		}
	}
	return hypergraph.Build(cfg.NumVertices, edges, labels)
}

// MustGenerate is Generate that panics on error; for tests and examples
// using the fixed presets.
func MustGenerate(cfg Config) *hypergraph.Hypergraph {
	h, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// assignCommunities gives every vertex a home community plus
// Poisson(MemberOverlap) foreign ones, and returns per-community member
// lists.
func assignCommunities(cfg Config, rng *rand.Rand) [][]uint32 {
	members := make([][]uint32, cfg.Communities)
	for v := 0; v < cfg.NumVertices; v++ {
		home := v % cfg.Communities
		members[home] = append(members[home], uint32(v))
		extra := poisson(rng, cfg.MemberOverlap)
		for k := 0; k < extra; k++ {
			c := rng.Intn(cfg.Communities)
			if c != home {
				members[c] = append(members[c], uint32(v))
			}
		}
	}
	// Guarantee no empty community (possible when V < C).
	for c := range members {
		if len(members[c]) == 0 {
			members[c] = append(members[c], uint32(rng.Intn(cfg.NumVertices)))
		}
	}
	return members
}

// sampleEdgeSize draws a hyperedge degree from a truncated geometric
// distribution with the configured mean.
func sampleEdgeSize(cfg Config, rng *rand.Rand) int {
	if cfg.EdgeSizeMin == cfg.EdgeSizeMax {
		return cfg.EdgeSizeMin
	}
	mean := cfg.EdgeSizeMean - float64(cfg.EdgeSizeMin)
	if mean <= 0 {
		return cfg.EdgeSizeMin
	}
	p := 1 / (mean + 1)
	size := cfg.EdgeSizeMin
	for size < cfg.EdgeSizeMax && rng.Float64() > p {
		size++
	}
	return size
}

func sortU32(s []uint32) {
	// Insertion sort: hyperedges are short.
	for i := 1; i < len(s); i++ {
		x := s[i]
		j := i - 1
		for j >= 0 && s[j] > x {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = x
	}
}

func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func zipfPick(rng *rand.Rand, n int, s float64) int {
	// Small n; linear scan over the normalized harmonic weights.
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
	}
	x := rng.Float64() * total
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / math.Pow(float64(i), s)
		if x <= acc {
			return i - 1
		}
	}
	return n - 1
}
