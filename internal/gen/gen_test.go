package gen

import (
	"math"
	"testing"

	"ohminer/internal/hypergraph"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", NumVertices: 100, NumEdges: 200, Communities: 10,
		MemberOverlap: 0.5, EdgeSizeMin: 2, EdgeSizeMax: 6, EdgeSizeMean: 3, Seed: 7}
	h1 := MustGenerate(cfg)
	h2 := MustGenerate(cfg)
	if h1.NumEdges() != h2.NumEdges() || h1.TotalIncidence() != h2.TotalIncidence() {
		t.Fatal("generator not deterministic")
	}
	for e := 0; e < h1.NumEdges(); e++ {
		a, b := h1.EdgeVertices(uint32(e)), h2.EdgeVertices(uint32(e))
		if len(a) != len(b) {
			t.Fatalf("edge %d differs", e)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("edge %d differs at %d", e, i)
			}
		}
	}
	// Different seed must (overwhelmingly) change the result.
	cfg.Seed = 8
	h3 := MustGenerate(cfg)
	same := h3.TotalIncidence() == h1.TotalIncidence()
	if same {
		diff := false
		for e := 0; e < h1.NumEdges() && !diff; e++ {
			a, b := h1.EdgeVertices(uint32(e)), h3.EdgeVertices(uint32(e))
			if len(a) != len(b) {
				diff = true
				break
			}
			for i := range a {
				if a[i] != b[i] {
					diff = true
					break
				}
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical hypergraphs")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{NumVertices: 0, NumEdges: 1, Communities: 1, EdgeSizeMin: 1, EdgeSizeMax: 2, EdgeSizeMean: 1.5},
		{NumVertices: 10, NumEdges: 0, Communities: 1, EdgeSizeMin: 1, EdgeSizeMax: 2, EdgeSizeMean: 1.5},
		{NumVertices: 10, NumEdges: 5, Communities: 0, EdgeSizeMin: 1, EdgeSizeMax: 2, EdgeSizeMean: 1.5},
		{NumVertices: 10, NumEdges: 5, Communities: 2, EdgeSizeMin: 3, EdgeSizeMax: 2, EdgeSizeMean: 2.5},
		{NumVertices: 10, NumEdges: 5, Communities: 2, EdgeSizeMin: 2, EdgeSizeMax: 4, EdgeSizeMean: 9},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateLabels(t *testing.T) {
	cfg := Config{Name: "t", NumVertices: 60, NumEdges: 80, Communities: 6,
		EdgeSizeMin: 2, EdgeSizeMax: 5, EdgeSizeMean: 3, NumLabels: 4, Seed: 1}
	h := MustGenerate(cfg)
	if !h.Labeled() {
		t.Fatal("labels missing")
	}
	if h.NumLabels() > 4 || h.NumLabels() < 1 {
		t.Fatalf("NumLabels=%d", h.NumLabels())
	}
}

func TestPresetsMatchTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("preset generation is slow in -short mode")
	}
	for _, p := range Presets() {
		if p.Tag == "CD" || p.Tag == "AM" || p.Tag == "SYN" {
			continue // large presets covered by TestLargePresets
		}
		h := MustGenerate(p.Config)
		assertPresetShape(t, p, h)
	}
}

func TestLargePresets(t *testing.T) {
	if testing.Short() {
		t.Skip("large presets")
	}
	for _, tag := range []string{"CD", "AM"} {
		p, err := PresetByTag(tag)
		if err != nil {
			t.Fatal(err)
		}
		h := MustGenerate(p.Config)
		assertPresetShape(t, p, h)
	}
}

func assertPresetShape(t *testing.T, p Preset, h *hypergraph.Hypergraph) {
	t.Helper()
	if h.NumEdges() < p.Config.NumEdges*95/100 {
		t.Errorf("%s: |E|=%d want ≈%d", p.Tag, h.NumEdges(), p.Config.NumEdges)
	}
	ad := h.AvgEdgeDegree()
	if math.Abs(ad-p.Config.EdgeSizeMean)/p.Config.EdgeSizeMean > 0.25 {
		t.Errorf("%s: AD=%.2f want ≈%.2f", p.Tag, ad, p.Config.EdgeSizeMean)
	}
	if h.NumVertices() != p.Config.NumVertices {
		t.Errorf("%s: |V|=%d want %d", p.Tag, h.NumVertices(), p.Config.NumVertices)
	}
}

func TestPresetByTag(t *testing.T) {
	if _, err := PresetByTag("SB"); err != nil {
		t.Fatal(err)
	}
	if _, err := PresetByTag("nope"); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestLabeledPreset(t *testing.T) {
	p, _ := PresetByTag("CH")
	cfg := p.Labeled(8)
	if cfg.NumLabels != 8 || cfg.Name == p.Config.Name {
		t.Fatalf("Labeled config: %+v", cfg)
	}
}

func TestSortU32(t *testing.T) {
	s := []uint32{5, 1, 4, 1e9, 0}
	sortU32(s)
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatalf("not sorted: %v", s)
		}
	}
}

func TestSaturatedSpaceTerminates(t *testing.T) {
	// 3 vertices cannot host 1000 distinct hyperedges; the generator must
	// bail out rather than loop forever, and still return a valid graph.
	cfg := Config{Name: "sat", NumVertices: 3, NumEdges: 1000, Communities: 1,
		EdgeSizeMin: 1, EdgeSizeMax: 3, EdgeSizeMean: 2, Seed: 3}
	h := MustGenerate(cfg)
	if h.NumEdges() == 0 || h.NumEdges() > 7 {
		t.Fatalf("NumEdges=%d", h.NumEdges())
	}
}
