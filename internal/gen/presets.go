package gen

import (
	"fmt"
	"sort"
)

// Preset describes one of the paper's evaluation datasets (Table 3) together
// with the scale factor applied to fit the reproduction environment.
type Preset struct {
	// Tag is the two-letter dataset abbreviation used throughout the paper
	// (CH, CP, SB, HB, WT, TC, CD, AM) plus SYN for the synthetic scale-out
	// dataset of Sec. 5.4.
	Tag string
	// Description matches the dataset's provenance in Table 3.
	Description string
	// PaperVertices/PaperEdges are the published sizes.
	PaperVertices, PaperEdges int
	// Scale is the |E| scale factor applied for the bench-scale variant
	// (1 = full size).
	Scale float64
	// Config generates the bench-scale dataset.
	Config Config
}

// presets lists the bench-scale dataset catalogue. Community counts and size
// bounds are tuned so the generated AD matches Table 3 within a few percent
// and the overlap density ordering between datasets is preserved (SB/HB
// dense, contact sets small and sparse, WT/TC power-law, CD/AM large and
// sparse).
var presets = []Preset{
	{
		Tag: "CH", Description: "contact-high-school (interaction groups)",
		PaperVertices: 327, PaperEdges: 7818, Scale: 1,
		Config: Config{Name: "CH", NumVertices: 327, NumEdges: 7818, Communities: 40,
			MemberOverlap: 4.0, EdgeSizeMin: 2, EdgeSizeMax: 5, EdgeSizeMean: 2.33, Seed: 101},
	},
	{
		Tag: "CP", Description: "contact-primary-school (interaction groups)",
		PaperVertices: 242, PaperEdges: 12704, Scale: 1,
		Config: Config{Name: "CP", NumVertices: 242, NumEdges: 12704, Communities: 30,
			MemberOverlap: 5.0, EdgeSizeMin: 2, EdgeSizeMax: 5, EdgeSizeMean: 2.42, Seed: 102},
	},
	{
		Tag: "SB", Description: "senate-bills (co-sponsorship; dense overlap)",
		PaperVertices: 294, PaperEdges: 29157, Scale: 0.1,
		Config: Config{Name: "SB", NumVertices: 294, NumEdges: 2916, Communities: 18,
			MemberOverlap: 1.2, EdgeSizeMin: 3, EdgeSizeMax: 25, EdgeSizeMean: 9.9, Seed: 103},
	},
	{
		Tag: "HB", Description: "house-bills (co-sponsorship; dense overlap)",
		PaperVertices: 1494, PaperEdges: 60987, Scale: 0.1,
		Config: Config{Name: "HB", NumVertices: 1494, NumEdges: 6099, Communities: 60,
			MemberOverlap: 1.2, EdgeSizeMin: 5, EdgeSizeMax: 60, EdgeSizeMean: 22.15, Seed: 104},
	},
	{
		Tag: "WT", Description: "walmart-trips (baskets; power-law)",
		PaperVertices: 88860, PaperEdges: 69906, Scale: 0.1,
		Config: Config{Name: "WT", NumVertices: 8886, NumEdges: 6991, Communities: 350,
			MemberOverlap: 0.8, EdgeSizeMin: 2, EdgeSizeMax: 25, EdgeSizeMean: 6.86, PowerLaw: true, Seed: 105},
	},
	{
		Tag: "TC", Description: "trivago-clicks (sessions; power-law)",
		PaperVertices: 172738, PaperEdges: 233202, Scale: 0.1,
		Config: Config{Name: "TC", NumVertices: 17274, NumEdges: 23320, Communities: 800,
			MemberOverlap: 0.8, EdgeSizeMin: 2, EdgeSizeMax: 12, EdgeSizeMean: 3.18, PowerLaw: true, Seed: 106},
	},
	{
		Tag: "CD", Description: "coauth-DBLP (papers × authors; large)",
		PaperVertices: 1924991, PaperEdges: 3700067, Scale: 0.025,
		Config: Config{Name: "CD", NumVertices: 48125, NumEdges: 92502, Communities: 6000,
			MemberOverlap: 0.5, EdgeSizeMin: 2, EdgeSizeMax: 10, EdgeSizeMean: 3.14, Seed: 107},
	},
	{
		Tag: "AM", Description: "AMiner (authors × publications; large)",
		PaperVertices: 13262573, PaperEdges: 22552647, Scale: 0.007,
		Config: Config{Name: "AM", NumVertices: 92838, NumEdges: 157869, Communities: 12000,
			MemberOverlap: 0.5, EdgeSizeMin: 2, EdgeSizeMax: 12, EdgeSizeMean: 3.82, Seed: 108},
	},
	{
		Tag: "SYN", Description: "synthetic 100M-hyperedge scale-out dataset (Sec. 5.4)",
		PaperVertices: 50000000, PaperEdges: 100000000, Scale: 0.003,
		Config: Config{Name: "SYN", NumVertices: 150000, NumEdges: 300000, Communities: 20000,
			MemberOverlap: 0.6, EdgeSizeMin: 2, EdgeSizeMax: 12, EdgeSizeMean: 4.0, PowerLaw: true, Seed: 109},
	},
}

// Presets returns the dataset catalogue ordered as in Table 3.
func Presets() []Preset {
	out := make([]Preset, len(presets))
	copy(out, presets)
	return out
}

// PresetByTag returns the preset with the given tag (case-sensitive).
func PresetByTag(tag string) (Preset, error) {
	for _, p := range presets {
		if p.Tag == tag {
			return p, nil
		}
	}
	tags := make([]string, 0, len(presets))
	for _, p := range presets {
		tags = append(tags, p.Tag)
	}
	sort.Strings(tags)
	return Preset{}, fmt.Errorf("gen: unknown preset %q (have %v)", tag, tags)
}

// Labeled returns a copy of the preset's Config with numLabels vertex label
// classes, for the labeled-HPM experiments (Fig. 14).
func (p Preset) Labeled(numLabels int) Config {
	c := p.Config
	c.NumLabels = numLabels
	c.Name += "-labeled"
	return c
}
