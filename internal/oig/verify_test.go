package oig

import (
	"math/rand"
	"testing"

	"ohminer/internal/gen"
	"ohminer/internal/pattern"
)

func TestVerifyAcceptsCompiledPlans(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 150, NumEdges: 600,
		Communities: 8, MemberOverlap: 1.3, EdgeSizeMin: 3, EdgeSizeMax: 10, EdgeSizeMean: 6, Seed: 51})
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 80; trial++ {
		m := 2 + rng.Intn(5)
		p, err := pattern.Sample(h, m, 2, 50, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeSimple, ModeMerged} {
			plan := MustCompile(p, mode)
			if err := Verify(plan); err != nil {
				t.Fatalf("trial %d mode %s: %v\npattern %s\n%s", trial, mode, err, p, plan)
			}
		}
	}
}

func TestVerifyAcceptsSpecialShapes(t *testing.T) {
	cases := []string{
		"0 1 2",         // single edge
		"0 1 2 3; 1 2",  // nested edge
		"0 1; 1 2; 0 2", // triangle with empty triple
		"0 1; 1 2; 2 3", // path with disconnection
		"0 1 2 3 4 5; 3 4 5 6 7 8; 3 4 5 6 7 9 10 11", // Fig. 1
	}
	for _, s := range cases {
		p, err := pattern.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeSimple, ModeMerged} {
			if err := Verify(MustCompile(p, mode)); err != nil {
				t.Errorf("%q mode %s: %v", s, mode, err)
			}
		}
	}
}

func TestVerifyRejectsCorruptedPlans(t *testing.T) {
	p := pattern.MustNew([][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
	}, nil)

	corruptions := []func(*Plan){
		func(pl *Plan) { pl.Steps[1].Degree++ },
		func(pl *Plan) { pl.Steps[2].Conn = pl.Steps[2].Conn[:1] },
		func(pl *Plan) { pl.Steps[2].Disc = append(pl.Steps[2].Disc, 0) },
		func(pl *Plan) {
			for s := range pl.Steps {
				for i := range pl.Steps[s].Ops {
					if pl.Steps[s].Ops[i].Kind == OpIntersect {
						pl.Steps[s].Ops[i].Want++
						return
					}
				}
			}
		},
		func(pl *Plan) {
			for s := range pl.Steps {
				if len(pl.Steps[s].Ops) > 0 {
					pl.Steps[s].Ops[0].A = Operand{Edge: true, Pos: s + 1}
					return
				}
			}
		},
		func(pl *Plan) {
			// Drop every op: coverage must fail.
			for s := range pl.Steps {
				pl.Steps[s].Ops = nil
			}
		},
	}
	for i, corrupt := range corruptions {
		plan := MustCompile(p, ModeMerged)
		corrupt(plan)
		if err := Verify(plan); err == nil {
			t.Errorf("corruption %d passed verification", i)
		}
	}
}
