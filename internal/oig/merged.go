package oig

import (
	"math/bits"

	"ohminer/internal/intset"
)

// class groups the hyperedge subsets whose pattern overlap is one and the
// same vertex set — the merge optimization of Sec. 4.3.1 (MergeForUnique).
// Only the ⊆-minimal members need computing: the first one (the
// representative) with a size check, later ones with set-equality checks
// against the representative, because for any other member S the embedding
// overlap ∩c_S provably equals the representative buffer once the minimal
// members agree and the completion bits are subset-checked.
type class struct {
	members  []uint32
	minimals []uint32
	rep      uint32
	repOp    Operand
	repReady bool
	union    uint32 // OR of members
	covered  uint32 // OR of minimals
}

// compileMerged emits the merged execution plan:
//
//   - class representative subsets → OpIntersect with size (+label) check;
//   - other ⊆-minimal members → OpIntersectEq against the representative
//     (a pattern hyperedge equal to an overlap degenerates to OpEqCheck);
//   - bits of a class's member union not covered by its minimals →
//     OpSubsetCheck (the representative set must lie inside that candidate
//     hyperedge);
//   - minimal empty subsets of ≥3 hyperedges → OpEmptyCheck (pairs are
//     generation-time disconnection checks);
//   - every other subset is implied and skipped.
func (p *Plan) compileMerged() error {
	m := p.Sig.M

	// Pattern overlap sets per non-empty subset, derived incrementally.
	sets := make([][]uint32, 1<<m)
	for i := 0; i < m; i++ {
		sets[1<<i] = p.Pattern.Edge(i)
	}
	for mask := uint32(1); mask < 1<<m; mask++ {
		if bits.OnesCount32(mask) < 2 || p.Sig.Size(mask) == 0 {
			continue
		}
		low := mask & -mask
		sets[mask] = intset.Intersect(sets[mask&^low], sets[low], nil)
	}

	// Class discovery over non-empty subsets, in readiness order so that
	// members[0]-style invariants hold deterministically.
	classes := map[string]*class{}
	classOf := map[uint32]*class{}
	for _, mask := range masksByStep(m) {
		if p.Sig.Size(mask) == 0 {
			continue
		}
		k := setKey(sets[mask])
		c, ok := classes[k]
		if !ok {
			c = &class{}
			classes[k] = c
		}
		c.members = append(c.members, mask)
		c.union |= mask
		classOf[mask] = c
	}
	for _, c := range classes {
		for _, mk := range c.members {
			minimal := true
			for _, other := range c.members {
				if other != mk && other&mk == other {
					minimal = false
					break
				}
			}
			if minimal {
				c.minimals = append(c.minimals, mk)
				c.covered |= mk
			}
		}
		// Members are in readiness order, so the first minimal is the
		// representative (smallest (maxBit, popcount, value) key).
		c.rep = c.minimals[0]
		if bits.OnesCount32(c.rep) == 1 {
			c.repOp = Operand{Edge: true, Pos: maxBit(c.rep)}
			c.repReady = true
		}
	}

	scratch := -1
	scratchSlot := func() int {
		if scratch < 0 {
			scratch = p.NumSlots
			p.NumSlots++
		}
		return scratch
	}
	bufOf := func(mask uint32) (Operand, bool) {
		if bits.OnesCount32(mask) == 1 {
			return Operand{Edge: true, Pos: maxBit(mask)}, true
		}
		c := classOf[mask]
		if c == nil || !c.repReady {
			return Operand{}, false
		}
		return c.repOp, true
	}
	mustBuf := func(mask uint32) Operand {
		op, ok := bufOf(mask)
		if !ok {
			// Unreachable by construction: the representative of any
			// already-ready subset has an earlier readiness key.
			panic("oig: operand not ready")
		}
		return op
	}

	for _, mask := range masksByStep(m) {
		pc := bits.OnesCount32(mask)
		t := maxBit(mask)
		if pc == 1 {
			// A hyperedge whose vertex set equals an earlier overlap: the
			// class representative is that overlap; demand equality.
			if c := classOf[mask]; c.rep != mask {
				at := t
				if rb := maxBit(c.rep); rb > at {
					at = rb
				}
				p.Steps[at].Ops = append(p.Steps[at].Ops, Op{
					Kind: OpEqCheck, A: Operand{Edge: true, Pos: t}, Eq: c.repOp, Out: -1, Mask: mask,
				})
			}
			continue
		}
		rest := mask &^ (1 << t)
		if p.Sig.Size(mask) == 0 {
			if pc == 2 || p.impliedZero(mask) {
				continue
			}
			p.Steps[t].Ops = append(p.Steps[t].Ops, Op{
				Kind: OpEmptyCheck, A: mustBuf(rest), B: Operand{Edge: true, Pos: t}, Out: -1, Mask: mask,
			})
			continue
		}
		c := classOf[mask]
		switch {
		case c.rep == mask:
			out := p.NumSlots
			p.NumSlots++
			c.repOp = Operand{Pos: out}
			c.repReady = true
			p.Steps[t].Ops = append(p.Steps[t].Ops, Op{
				Kind: OpIntersect, A: mustBuf(rest), B: p.chooseB(mask, t, bufOf),
				Out: out, Want: p.Sig.Size(mask), Mask: mask, LabelWant: p.labelWant(mask),
			})
		case isMinimal(c, mask):
			p.Steps[t].Ops = append(p.Steps[t].Ops, Op{
				Kind: OpIntersectEq, A: mustBuf(rest), B: p.chooseB(mask, t, bufOf),
				Eq: c.repOp, Out: scratchSlot(), Mask: mask,
			})
		default:
			// Implied by the class machinery; skip.
		}
	}

	// Class-union completion: hyperedges appearing in some member but in no
	// minimal member must contain the representative set. Classes are
	// visited in representative order for deterministic plans.
	ordered := make([]*class, 0, len(classes))
	for _, c := range classes {
		ordered = append(ordered, c)
	}
	sortClasses(ordered)
	for _, c := range ordered {
		extra := c.union &^ c.covered
		for extra != 0 {
			bit := extra & -extra
			extra &^= bit
			i := maxBit(bit)
			at := i
			if rb := maxBit(c.rep); rb > at {
				at = rb
			}
			p.Steps[at].Ops = append(p.Steps[at].Ops, Op{
				Kind: OpSubsetCheck, A: c.repOp, B: Operand{Edge: true, Pos: i},
				Out: -1, Mask: c.union,
			})
		}
	}
	return nil
}

func sortClasses(cs []*class) {
	for i := 1; i < len(cs); i++ {
		x := cs[i]
		j := i - 1
		for j >= 0 && classLess(x, cs[j]) {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = x
	}
}

func classLess(a, b *class) bool {
	ka, kb := a.rep, b.rep
	if ma, mb := maxBit(ka), maxBit(kb); ma != mb {
		return ma < mb
	}
	return less(ka, kb)
}

func isMinimal(c *class, mask uint32) bool {
	for _, mk := range c.minimals {
		if mk == mask {
			return true
		}
	}
	return false
}
