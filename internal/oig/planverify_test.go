package oig

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"ohminer/internal/gen"
	"ohminer/internal/pattern"
)

func fig1Plan(t *testing.T, mode Mode) *Plan {
	t.Helper()
	p, err := pattern.Parse("0 1 2 3 4 5; 3 4 5 6 7 8; 3 4 5 6 7 9 10 11")
	if err != nil {
		t.Fatal(err)
	}
	return MustCompile(p, mode)
}

func TestVerifyProgramAcceptsCompiledPlans(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 150, NumEdges: 600,
		Communities: 8, MemberOverlap: 1.3, EdgeSizeMin: 3, EdgeSizeMax: 10, EdgeSizeMean: 6, Seed: 52})
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(5)
		p, err := pattern.Sample(h, m, 2, 50, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeSimple, ModeMerged} {
			plan := MustCompile(p, mode)
			if err := VerifyProgram(plan); err != nil {
				t.Fatalf("trial %d mode %s: %v\npattern %s\n%s", trial, mode, err, p, plan)
			}
			if plan.FP == 0 {
				t.Fatalf("trial %d mode %s: compiled plan is unstamped", trial, mode)
			}
		}
	}
}

// TestVerifyProgramRejectsInvalidPlans is the acceptance gate for the IR
// verifier: three hand-crafted invalid plans — a use-before-def slot read, a
// read of a demoted/compacted slot, and a mutation of a counting-relevant
// field the structural checks do not inspect — each rejected with a distinct
// diagnostic.
func TestVerifyProgramRejectsInvalidPlans(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, pl *Plan)
		want    string
	}{
		{
			name: "use-before-def slot read",
			corrupt: func(t *testing.T, pl *Plan) {
				for s := range pl.Steps {
					for i := range pl.Steps[s].Ops {
						op := &pl.Steps[s].Ops[i]
						if op.Kind == OpIntersect || op.Kind == OpIntersectEq {
							// Read the op's own output: the slot is not
							// written until the op completes.
							op.A = Operand{Edge: false, Pos: op.Out}
							return
						}
					}
				}
				t.Fatal("no slot-writing op in plan")
			},
			want: "read before write",
		},
		{
			name: "demoted slot read",
			corrupt: func(t *testing.T, pl *Plan) {
				for s := range pl.Steps {
					for i := range pl.Steps[s].Ops {
						op := &pl.Steps[s].Ops[i]
						switch op.Kind {
						case OpIntersect, OpIntersectEq, OpEmptyCheck, OpSubsetCheck, OpIntersectCount:
							// Reference a slot index beyond the compacted
							// slot space, as a stale pre-demotion plan would.
							op.B = Operand{Edge: false, Pos: pl.NumSlots}
							return
						}
					}
				}
				t.Fatal("no B-reading op in plan")
			},
			want: "beyond the plan's",
		},
		{
			name: "fingerprint-uncovered field",
			corrupt: func(t *testing.T, pl *Plan) {
				// Order is counting-relevant (it maps plan counts back to the
				// original pattern) but structurally unconstrained — only the
				// fingerprint catches its mutation.
				if len(pl.Order) < 2 {
					t.Fatal("plan order too short")
				}
				pl.Order[0], pl.Order[1] = pl.Order[1], pl.Order[0]
			},
			want: "fingerprint",
		},
		{
			name: "phantom slot",
			corrupt: func(t *testing.T, pl *Plan) {
				pl.NumSlots++
			},
			want: "never written",
		},
	}
	for _, mode := range []Mode{ModeSimple, ModeMerged} {
		for _, tc := range cases {
			pl := fig1Plan(t, mode)
			tc.corrupt(t, pl)
			err := VerifyProgram(pl)
			if err == nil {
				t.Errorf("mode %s: %s: invalid plan passed verification", mode, tc.name)
				continue
			}
			if !errors.Is(err, ErrInvalidPlan) {
				t.Errorf("mode %s: %s: error does not wrap ErrInvalidPlan: %v", mode, tc.name, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("mode %s: %s: diagnostic %q does not mention %q", mode, tc.name, err, tc.want)
			}
		}
	}
}

func TestVerifyProgramDiagnosticsDistinct(t *testing.T) {
	pl := fig1Plan(t, ModeMerged)
	msgs := map[string]bool{}
	for _, corrupt := range []func(*Plan){
		func(pl *Plan) {
			for s := range pl.Steps {
				for i := range pl.Steps[s].Ops {
					op := &pl.Steps[s].Ops[i]
					if op.Kind == OpIntersect || op.Kind == OpIntersectEq {
						op.A = Operand{Edge: false, Pos: op.Out}
						return
					}
				}
			}
		},
		func(pl *Plan) { pl.Steps[0].Ops = nil; pl.Steps[1].Ops = nil; pl.Steps[2].Ops = nil },
		func(pl *Plan) { pl.Order[0], pl.Order[1] = pl.Order[1], pl.Order[0] },
	} {
		c := *pl
		c.Steps = append([]Step(nil), pl.Steps...)
		for i := range c.Steps {
			c.Steps[i].Ops = append([]Op(nil), pl.Steps[i].Ops...)
		}
		c.Order = append([]int(nil), pl.Order...)
		corrupt(&c)
		err := VerifyProgram(&c)
		if err == nil {
			t.Fatal("corrupted plan passed verification")
		}
		if msgs[err.Error()] {
			t.Errorf("duplicate diagnostic %q", err)
		}
		msgs[err.Error()] = true
	}
}

// TestFingerprintCoverage mutates one representative of each
// counting-relevant field class and asserts the fingerprint moves.
func TestFingerprintCoverage(t *testing.T) {
	base := fig1Plan(t, ModeMerged)
	orig := Fingerprint(base)
	if orig != base.FP {
		t.Fatalf("recomputed fingerprint %#x != stamped %#x", orig, base.FP)
	}

	mutations := []struct {
		name    string
		mutate  func(pl *Plan)
		applies func(pl *Plan) bool
	}{
		{"mode", func(pl *Plan) { pl.Mode = ModeSimple }, nil},
		{"numslots", func(pl *Plan) { pl.NumSlots++ }, nil},
		{"order", func(pl *Plan) { pl.Order[0], pl.Order[1] = pl.Order[1], pl.Order[0] }, nil},
		{"degree", func(pl *Plan) { pl.Steps[0].Degree++ }, nil},
		{"conn", func(pl *Plan) { pl.Steps[1].Conn = append(pl.Steps[1].Conn, 0) }, nil},
		{"disc", func(pl *Plan) { pl.Steps[1].Disc = append(pl.Steps[1].Disc, 0) }, nil},
		{"edgelabel", func(pl *Plan) { pl.Steps[0].EdgeLabel = 7 }, nil},
		{"op kind", func(pl *Plan) { firstOp(pl).Kind = OpEqCheck }, hasOps},
		{"op A", func(pl *Plan) { firstOp(pl).A.Pos++ }, hasOps},
		{"op out", func(pl *Plan) { firstOp(pl).Out++ }, hasOps},
		{"op want", func(pl *Plan) { firstOp(pl).Want++ }, hasOps},
		{"op mask", func(pl *Plan) { firstOp(pl).Mask ^= 1 }, hasOps},
	}
	for _, mu := range mutations {
		pl := fig1Plan(t, ModeMerged)
		if mu.applies != nil && !mu.applies(pl) {
			t.Fatalf("%s: mutation not applicable to test plan", mu.name)
		}
		mu.mutate(pl)
		if Fingerprint(pl) == orig {
			t.Errorf("%s: fingerprint unchanged after mutation", mu.name)
		}
	}

	// Labeled patterns: vertex labels and label histograms must be covered.
	labels := []uint32{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	lp := pattern.MustNew([][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
	}, labels)
	lplan := MustCompile(lp, ModeMerged)
	lorig := Fingerprint(lplan)
	lmut := MustCompile(lp, ModeMerged)
	found := false
	for s := range lmut.Steps {
		for i := range lmut.Steps[s].Ops {
			if lw := lmut.Steps[s].Ops[i].LabelWant; len(lw) > 0 {
				lw[0].Count++
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		for s := range lmut.Steps {
			if len(lmut.Steps[s].EdgeLabels) > 0 {
				lmut.Steps[s].EdgeLabels[0].Count++
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("labeled plan has no label histograms to mutate")
	}
	if Fingerprint(lmut) == lorig {
		t.Error("label histogram mutation left fingerprint unchanged")
	}
}

func hasOps(pl *Plan) bool { return firstOp(pl) != nil }

func firstOp(pl *Plan) *Op {
	for s := range pl.Steps {
		if len(pl.Steps[s].Ops) > 0 {
			return &pl.Steps[s].Ops[0]
		}
	}
	return nil
}
