package oig

import (
	"fmt"
	"math/bits"
	"strings"
	"time"

	"ohminer/internal/pattern"
	"ohminer/internal/sig"
)

// Mode selects how aggressively the compiler eliminates redundant overlap
// computations.
type Mode int

const (
	// ModeSimple checks every non-implied hyperedge subset with its own
	// intersection + size comparison. It embodies the IEP optimization alone
	// (set intersections instead of set differences and vertex profiles) —
	// the OHM-I ablation of Sec. 5.3.
	ModeSimple Mode = iota
	// ModeMerged additionally applies the OIG merge optimization: subsets
	// whose pattern overlap is the same vertex set form a class; only the
	// ⊆-minimal subsets are computed (the first with a size check, the
	// others with set-equality checks against the class representative),
	// plus subset-completion checks for hyperedges the minimal subsets do
	// not cover. All other subsets are implied — full OHMiner.
	ModeMerged
)

func (m Mode) String() string {
	if m == ModeMerged {
		return "merged"
	}
	return "simple"
}

// OpKind enumerates validation operations.
type OpKind int

const (
	// OpIntersect computes Out = A ∩ B and requires |Out| == Want (and the
	// label histogram to match LabelWant for labeled patterns).
	OpIntersect OpKind = iota
	// OpIntersectEq computes Out = A ∩ B and requires Out to equal the set
	// held by Eq (the class representative).
	OpIntersectEq
	// OpEmptyCheck requires A ∩ B == ∅ (early-exit probe; minimal empty
	// overlap of ≥3 hyperedges — pairs are handled by generation-time
	// disconnection checks).
	OpEmptyCheck
	// OpSubsetCheck requires the set held by A to be a subset of the set
	// held by B (class-union completion, e.g. a pattern hyperedge nested in
	// another).
	OpSubsetCheck
	// OpEqCheck requires the sets held by A and Eq to be equal without
	// computing an intersection (a pattern hyperedge whose vertex set
	// coincides with an overlap).
	OpEqCheck
	// OpIntersectCount requires |A ∩ B| == Want without materializing the
	// overlap — emitted by the compiler's dead-slot pass for intersections
	// whose output no later operation reads (Out is -1).
	OpIntersectCount
)

var opNames = [...]string{"intersect", "intersect-eq", "empty", "subset", "eq", "intersect-count"}

func (k OpKind) String() string { return opNames[k] }

// Operand names a set available during matching: either the candidate
// hyperedge bound at position Pos of the matching order, or a previously
// computed overlap buffer slot.
type Operand struct {
	Edge bool
	Pos  int // matching-order position (Edge) or slot index (!Edge)
}

func (o Operand) String() string {
	if o.Edge {
		return fmt.Sprintf("c%d", o.Pos)
	}
	return fmt.Sprintf("s%d", o.Pos)
}

// ContainerHint advises the engine which set representation the operands of
// an operation are expected to arrive in. Hints are chosen after compilation
// from DAL density statistics (engine.CompilePlan), are purely
// performance-directing — every hint value computes the same result — and
// are therefore excluded from the plan fingerprint: snapshots and cluster
// leases stay exchangeable between builds with different hint policies.
type ContainerHint uint8

const (
	// HintAuto lets the engine pick per call from the operands' actual
	// representations (the adaptive default).
	HintAuto ContainerHint = iota
	// HintArray asserts the operands are array-only, so the engine skips the
	// window-metadata lookup entirely.
	HintArray
	// HintBitmap asserts at least one hyperedge operand is dense enough to
	// be bitmap-backed; the engine resolves edge operands through the DAL's
	// container arena. Requires an Edge operand (slots never carry windows),
	// enforced by VerifyProgram.
	HintBitmap
)

var hintNames = [...]string{"auto", "array", "bitmap"}

func (h ContainerHint) String() string {
	if int(h) < len(hintNames) {
		return hintNames[h]
	}
	return fmt.Sprintf("hint(%d)", uint8(h))
}

// Op is one validation operation of the execution plan.
type Op struct {
	Kind OpKind
	A, B Operand
	Eq   Operand // OpIntersectEq / OpEqCheck comparison target
	Out  int     // destination slot (OpIntersect / OpIntersectEq); -1 otherwise
	Want int     // expected overlap size (OpIntersect)
	// Mask is the hyperedge subset this operation validates (diagnostics).
	Mask uint32
	// LabelWant is the expected label histogram of the overlap, set for
	// OpIntersect on labeled patterns.
	LabelWant []sig.LabelCount
	// Hint is the container expectation for this op's operands (perf-only;
	// see ContainerHint). The compiler emits HintAuto; engine.CompilePlan
	// refines it from DAL degree statistics.
	Hint ContainerHint
}

// Step drives the matching of one pattern hyperedge: candidate generation
// constraints followed by the overlap validations that become ready once
// this hyperedge is bound.
type Step struct {
	// Degree is the required candidate hyperedge degree D(pe_t).
	Degree int
	// Conn lists earlier positions whose candidate must overlap the new
	// candidate (generation intersects their degree-pruned adjacency).
	Conn []int
	// Disc lists earlier positions whose candidate must NOT overlap the new
	// candidate (generation-time disconnection check via the DAL).
	Disc []int
	// EdgeLabels is the label histogram of pe_t (labeled patterns only).
	EdgeLabels []sig.LabelCount
	// EdgeLabel is the hyperedge label of pe_t (hyperedge-labeled patterns
	// only; -1 otherwise). Candidates must carry the same label.
	EdgeLabel int64
	// Restrict lists earlier matching-order positions j whose bound data
	// hyperedge ID must stay strictly below the new candidate's (c[j] < c_t)
	// — the symmetry-breaking ordering constraints derived from the
	// reordered pattern's automorphism group (GraphZero-style). Exactly one
	// of each unordered embedding's |Aut| ordered tuples — the
	// lexicographically smallest — satisfies every restriction, so an engine
	// enforcing them counts unique embeddings directly. Empty on asymmetric
	// patterns and on plans compiled with NoRestrictions.
	Restrict []int
	// Ops are the validation operations, ordered by (popcount, mask).
	Ops []Op
}

// Plan is the overlap-centric execution plan (Definition 2).
type Plan struct {
	// Pattern is the pattern with hyperedges permuted into matching order;
	// position t of the plan matches Pattern.Edge(t).
	Pattern *pattern.Pattern
	// Order maps matching-order positions to the original hyperedge indices.
	Order []int
	Steps []Step
	// NumSlots is the number of overlap buffers a worker must hold.
	NumSlots int
	Mode     Mode
	Labeled  bool
	// Sig is the reordered pattern's overlap signature.
	Sig sig.Signature
	// LabelSig is set for labeled patterns.
	LabelSig sig.LabelSignature
	// ProfileCounts[t] is the pattern's vertex-profile multiset for the
	// prefix 0..t — key = profileMask | label<<32 — used by the
	// HGMatch-style profile validator.
	ProfileCounts []map[uint64]int
	// Restricted reports that the plan carries symmetry-breaking
	// restrictions (some Step.Restrict is non-empty): the engine enumerates
	// one canonical ordered tuple per unordered embedding, ~|Aut|× less work
	// on symmetric patterns. Asymmetric patterns compile identically with or
	// without restrictions and leave this false.
	Restricted bool
	// Graph is the pattern's OIG (diagnostics, Table 6 accounting).
	Graph *Graph
	// CompileTime is the wall-clock compilation duration (OIG-T, Table 6).
	CompileTime time.Duration
	// FP is the semantic fingerprint computed by Fingerprint at the end of
	// compilation. VerifyProgram recomputes it to detect post-compile
	// mutation of any field that affects counting; zero means unstamped.
	FP uint64
}

// CompileOptions tunes Compile beyond the mode.
type CompileOptions struct {
	// Order is an explicit matching order (order[i] = index of the pattern
	// hyperedge matched at step i); nil selects the structural
	// MatchingOrder. Used for data-aware orderings built from hypergraph
	// selectivity features.
	Order []int
	// NoRestrictions suppresses the symmetry-breaking pass: the plan
	// enumerates every ordered tuple, |Aut| per unordered embedding — the
	// pre-restriction behavior, kept for the sym ablation, for sampling
	// estimators whose scaling math assumes ordered tuples, and for anchored
	// (position-filtered) counting where a tuple's canonical reordering may
	// fail the filter its original passed.
	NoRestrictions bool
}

// Compile analyzes the pattern and produces its execution plan. The pattern
// is reordered by its matching order internally; symmetry-breaking
// restrictions are emitted by default.
func Compile(p *pattern.Pattern, mode Mode) (*Plan, error) {
	return CompileWith(p, mode, CompileOptions{})
}

// CompileOrdered is Compile with an explicit matching order.
func CompileOrdered(p *pattern.Pattern, mode Mode, order []int) (*Plan, error) {
	return CompileWith(p, mode, CompileOptions{Order: order})
}

// CompileWith is the full-control compiler entry point.
func CompileWith(p *pattern.Pattern, mode Mode, co CompileOptions) (*Plan, error) {
	start := time.Now()
	order := co.Order
	if order == nil {
		order = p.MatchingOrder()
	}
	rp, err := p.Reorder(order)
	if err != nil {
		return nil, fmt.Errorf("oig: reorder: %w", err)
	}
	m := rp.NumEdges()
	s := rp.Signature()

	plan := &Plan{
		Pattern: rp,
		Order:   order,
		Steps:   make([]Step, m),
		Mode:    mode,
		Labeled: rp.Labeled(),
		Sig:     s,
		Graph:   BuildGraph(rp.Edges()),
	}
	if plan.Labeled {
		ls, err := rp.LabelSignature()
		if err != nil {
			return nil, err
		}
		plan.LabelSig = ls
	}
	plan.buildProfileCounts()

	// Generation constraints per step.
	for t := 0; t < m; t++ {
		st := &plan.Steps[t]
		st.Degree = rp.Degree(t)
		st.EdgeLabel = -1
		if rp.EdgeLabeled() {
			st.EdgeLabel = int64(rp.EdgeLabel(t))
		}
		if plan.Labeled {
			st.EdgeLabels = plan.LabelSig.Counts[1<<t]
		}
		for j := 0; j < t; j++ {
			if s.Size(uint32(1<<j|1<<t)) > 0 {
				st.Conn = append(st.Conn, j)
			} else {
				st.Disc = append(st.Disc, j)
			}
		}
	}

	// Symmetry-breaking pass: derive the stabilizer-chain restrictions of
	// the reordered pattern's automorphism group and attach them to the
	// steps. The counting semantics change (one canonical tuple per orbit),
	// so the restrictions are part of the semantic fingerprint and are
	// re-derived by VerifyProgram.
	if !co.NoRestrictions {
		for t, rs := range rp.SymmetryRestrictions() {
			if len(rs) > 0 {
				plan.Steps[t].Restrict = rs
				plan.Restricted = true
			}
		}
	}

	switch mode {
	case ModeSimple:
		plan.compileSimple()
	case ModeMerged:
		if err := plan.compileMerged(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("oig: unknown mode %d", mode)
	}
	plan.optimizeCountOnly()
	plan.FP = Fingerprint(plan)
	// Debug assertion: the compiler must only ever emit valid programs. The
	// check is linear in the plan, dwarfed by the exponential compile itself.
	if err := VerifyProgram(plan); err != nil {
		return nil, fmt.Errorf("oig: compiler emitted an invalid plan: %w", err)
	}
	plan.CompileTime = time.Since(start)
	return plan, nil
}

// optimizeCountOnly rewrites every OpIntersect whose output slot no later
// operation reads into OpIntersectCount: the engine then checks the overlap
// size with Kernel.IntersectCount instead of materializing the vertices into
// a worker buffer. Intersections with a label-histogram check keep their
// output (the histogram is computed over the materialized overlap), as does
// every OpIntersectEq (the equality comparison needs the result set).
// Afterwards the surviving slots are compacted so NumSlots reflects the
// buffers a worker actually needs.
func (p *Plan) optimizeCountOnly() {
	read := make([]bool, p.NumSlots)
	markRead := func(o Operand) {
		if !o.Edge {
			read[o.Pos] = true
		}
	}
	for si := range p.Steps {
		for oi := range p.Steps[si].Ops {
			op := &p.Steps[si].Ops[oi]
			markRead(op.A)
			switch op.Kind {
			case OpIntersect, OpIntersectEq, OpEmptyCheck, OpSubsetCheck:
				markRead(op.B)
			}
			switch op.Kind {
			case OpIntersectEq, OpEqCheck:
				markRead(op.Eq)
			}
		}
	}

	// Convert dead-output intersections, then renumber surviving slots in
	// first-write order.
	remap := make([]int, p.NumSlots)
	for i := range remap {
		remap[i] = -1
	}
	slots := 0
	for si := range p.Steps {
		for oi := range p.Steps[si].Ops {
			op := &p.Steps[si].Ops[oi]
			if op.Kind == OpIntersect && !read[op.Out] && op.LabelWant == nil {
				op.Kind = OpIntersectCount
				op.Out = -1
				continue
			}
			if (op.Kind == OpIntersect || op.Kind == OpIntersectEq) && remap[op.Out] < 0 {
				remap[op.Out] = slots
				slots++
			}
		}
	}
	if slots == p.NumSlots {
		return
	}
	reslot := func(o Operand) Operand {
		if !o.Edge {
			o.Pos = remap[o.Pos]
		}
		return o
	}
	for si := range p.Steps {
		for oi := range p.Steps[si].Ops {
			op := &p.Steps[si].Ops[oi]
			op.A = reslot(op.A)
			switch op.Kind {
			case OpIntersect, OpIntersectEq, OpEmptyCheck, OpSubsetCheck, OpIntersectCount:
				op.B = reslot(op.B)
			}
			switch op.Kind {
			case OpIntersectEq, OpEqCheck:
				op.Eq = reslot(op.Eq)
			}
			if op.Kind == OpIntersect || op.Kind == OpIntersectEq {
				op.Out = remap[op.Out]
			}
		}
	}
	p.NumSlots = slots
}

// MustCompile is Compile that panics on error.
func MustCompile(p *pattern.Pattern, mode Mode) *Plan {
	pl, err := Compile(p, mode)
	if err != nil {
		panic(err)
	}
	return pl
}

// maxBit returns the highest set bit index — the matching-order step at
// which the subset becomes computable.
func maxBit(mask uint32) int { return bits.Len32(mask) - 1 }

// impliedZero reports whether some proper subset of mask with ≥2 hyperedges
// has an empty pattern overlap; if so the emptiness of mask's overlap is
// implied by that subset's own check (the group-based pruning of
// Sec. 4.3.2).
func (p *Plan) impliedZero(mask uint32) bool {
	for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
		if bits.OnesCount32(sub) >= 2 && p.Sig.Size(sub) == 0 {
			return true
		}
	}
	return false
}

// labelWant returns the expected label histogram of the overlap for labeled
// patterns (nil for unlabeled).
func (p *Plan) labelWant(mask uint32) []sig.LabelCount {
	if !p.Labeled {
		return nil
	}
	return p.LabelSig.Counts[mask]
}

// chooseB picks the cheapest already-available operand whose subset contains
// position t and is strictly inside mask: the pair/overlap with the smallest
// pattern overlap wins (shorter buffer ⇒ cheaper intersection); the bound
// candidate hyperedge c_t is the fallback.
func (p *Plan) chooseB(mask uint32, t int, bufOf func(uint32) (Operand, bool)) Operand {
	best := Operand{Edge: true, Pos: t}
	bestSize := p.Sig.Size(1 << t)
	for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
		if sub&(1<<t) == 0 || bits.OnesCount32(sub) < 2 {
			continue
		}
		sz := p.Sig.Size(sub)
		if sz == 0 || sz >= bestSize {
			continue
		}
		if op, ok := bufOf(sub); ok {
			best, bestSize = op, sz
		}
	}
	return best
}

// compileSimple emits one OpIntersect per non-implied non-empty subset and
// one OpEmptyCheck per minimal empty subset (≥3 edges); every subset owns a
// slot.
func (p *Plan) compileSimple() {
	m := p.Sig.M
	slotOf := map[uint32]int{}
	bufOf := func(mask uint32) (Operand, bool) {
		if bits.OnesCount32(mask) == 1 {
			return Operand{Edge: true, Pos: maxBit(mask)}, true
		}
		s, ok := slotOf[mask]
		return Operand{Pos: s}, ok
	}
	for _, mask := range masksByStep(m) {
		pc := bits.OnesCount32(mask)
		if pc < 2 {
			continue
		}
		t := maxBit(mask)
		rest := mask &^ (1 << t)
		if p.Sig.Size(mask) == 0 {
			if pc == 2 || p.impliedZero(mask) {
				continue // pair → generation Disc; deeper → implied
			}
			a, _ := bufOf(rest)
			p.Steps[t].Ops = append(p.Steps[t].Ops, Op{
				Kind: OpEmptyCheck, A: a, B: Operand{Edge: true, Pos: t}, Out: -1, Mask: mask,
			})
			continue
		}
		a, _ := bufOf(rest)
		b := p.chooseB(mask, t, bufOf)
		out := p.NumSlots
		p.NumSlots++
		slotOf[mask] = out
		p.Steps[t].Ops = append(p.Steps[t].Ops, Op{
			Kind: OpIntersect, A: a, B: b, Out: out,
			Want: p.Sig.Size(mask), Mask: mask, LabelWant: p.labelWant(mask),
		})
	}
}

// masksByStep enumerates all masks ordered by (maxBit, popcount, value) —
// the order in which subsets become ready during matching.
func masksByStep(m int) []uint32 {
	var out []uint32
	for t := 0; t < m; t++ {
		lo := uint32(1) << t
		var stepMasks []uint32
		for mask := lo; mask < lo<<1; mask++ {
			if mask&lo != 0 {
				stepMasks = append(stepMasks, mask)
			}
		}
		// Sort by (popcount, value).
		for i := 1; i < len(stepMasks); i++ {
			x := stepMasks[i]
			j := i - 1
			for j >= 0 && less(x, stepMasks[j]) {
				stepMasks[j+1] = stepMasks[j]
				j--
			}
			stepMasks[j+1] = x
		}
		out = append(out, stepMasks...)
	}
	return out
}

func less(a, b uint32) bool {
	pa, pb := bits.OnesCount32(a), bits.OnesCount32(b)
	if pa != pb {
		return pa < pb
	}
	return a < b
}

// String renders the plan in the style of Table 1.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan(mode=%s, order=%v, slots=%d", p.Mode, p.Order, p.NumSlots)
	if p.Restricted {
		b.WriteString(", restricted")
	}
	b.WriteString(")\n")
	for t, st := range p.Steps {
		fmt.Fprintf(&b, "step %d: gen degree=%d conn=%v disc=%v", t, st.Degree, st.Conn, st.Disc)
		for _, j := range st.Restrict {
			fmt.Fprintf(&b, " c%d<c%d", j, t)
		}
		b.WriteByte('\n')
		for _, op := range st.Ops {
			switch op.Kind {
			case OpIntersect:
				fmt.Fprintf(&b, "  s%d ← %s ∩ %s, |·|=%d  (mask %b)", op.Out, op.A, op.B, op.Want, op.Mask)
			case OpIntersectEq:
				fmt.Fprintf(&b, "  s%d ← %s ∩ %s, == %s  (mask %b)", op.Out, op.A, op.B, op.Eq, op.Mask)
			case OpEmptyCheck:
				fmt.Fprintf(&b, "  %s ∩ %s == ∅  (mask %b)", op.A, op.B, op.Mask)
			case OpSubsetCheck:
				fmt.Fprintf(&b, "  %s ⊆ %s  (mask %b)", op.A, op.B, op.Mask)
			case OpEqCheck:
				fmt.Fprintf(&b, "  %s == %s  (mask %b)", op.A, op.Eq, op.Mask)
			case OpIntersectCount:
				fmt.Fprintf(&b, "  |%s ∩ %s| = %d  (mask %b)", op.A, op.B, op.Want, op.Mask)
			}
			if op.Hint != HintAuto {
				fmt.Fprintf(&b, "  [%s]", op.Hint)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// NumOps counts validation operations by kind.
func (p *Plan) NumOps() map[OpKind]int {
	out := map[OpKind]int{}
	for _, st := range p.Steps {
		for _, op := range st.Ops {
			out[op.Kind]++
		}
	}
	return out
}

// buildProfileCounts precomputes, for every prefix length, the multiset of
// vertex profiles of the reordered pattern (HGMatch's validation target).
func (p *Plan) buildProfileCounts() {
	m := p.Pattern.NumEdges()
	p.ProfileCounts = make([]map[uint64]int, m)
	profiles := make(map[uint32]uint32, p.Pattern.NumVertices())
	for t := 0; t < m; t++ {
		for _, v := range p.Pattern.Edge(t) {
			profiles[v] |= 1 << uint(t)
		}
		counts := make(map[uint64]int, len(profiles))
		for v, mask := range profiles {
			key := uint64(mask)
			if p.Labeled {
				key |= uint64(p.Pattern.Label(v)) << 32
			}
			counts[key]++
		}
		p.ProfileCounts[t] = counts
	}
}
