package oig

import (
	"fmt"
	"math/bits"
)

// Verify checks the structural invariants of a compiled plan and returns
// the first violation found. A valid plan guarantees the engine's
// interpreter cannot read unbound candidates or unwritten slots, and that
// the plan's checks collectively cover the pattern's overlap signature:
//
//  1. step metadata matches the reordered pattern (degree, conn/disc
//     partition of earlier positions according to the signature);
//  2. every operand references a position ≤ its step or a slot written by
//     an earlier operation;
//  3. every non-implied subset of hyperedges is accounted for: non-empty
//     subsets by an intersection/equality check or class membership, empty
//     pairs by generation-time disconnection, minimal empty subsets by an
//     emptiness check.
//
// cmd tools run Verify after compilation; the test suite runs it across
// randomized patterns for both modes.
func Verify(p *Plan) error {
	m := p.Pattern.NumEdges()
	if len(p.Steps) != m {
		return fmt.Errorf("oig: %d steps for %d hyperedges", len(p.Steps), m)
	}

	written := make([]bool, p.NumSlots)
	opByMask := map[uint32]bool{}
	resolvable := func(o Operand, step int) error {
		if o.Edge {
			if o.Pos < 0 || o.Pos > step {
				return fmt.Errorf("edge operand c%d at step %d", o.Pos, step)
			}
			return nil
		}
		if o.Pos < 0 || o.Pos >= p.NumSlots {
			return fmt.Errorf("slot operand s%d out of range %d", o.Pos, p.NumSlots)
		}
		if !written[o.Pos] {
			return fmt.Errorf("slot operand s%d read before write", o.Pos)
		}
		return nil
	}

	for t := 0; t < m; t++ {
		st := &p.Steps[t]
		if st.Degree != p.Pattern.Degree(t) {
			return fmt.Errorf("oig: step %d degree %d != pattern %d", t, st.Degree, p.Pattern.Degree(t))
		}
		seen := map[int]bool{}
		for _, j := range st.Conn {
			if j < 0 || j >= t || seen[j] {
				return fmt.Errorf("oig: step %d conn %v", t, st.Conn)
			}
			seen[j] = true
			if p.Sig.Size(uint32(1<<j|1<<t)) == 0 {
				return fmt.Errorf("oig: step %d lists %d as connected but pair overlap is empty", t, j)
			}
		}
		for _, j := range st.Disc {
			if j < 0 || j >= t || seen[j] {
				return fmt.Errorf("oig: step %d disc %v", t, st.Disc)
			}
			seen[j] = true
			if p.Sig.Size(uint32(1<<j|1<<t)) != 0 {
				return fmt.Errorf("oig: step %d lists %d as disconnected but pair overlap is non-empty", t, j)
			}
		}
		if len(seen) != t {
			return fmt.Errorf("oig: step %d covers %d of %d earlier positions", t, len(seen), t)
		}
		for i, op := range st.Ops {
			if err := resolvable(op.A, t); err != nil {
				return fmt.Errorf("oig: step %d op %d (%s): A: %v", t, i, op.Kind, err)
			}
			switch op.Kind {
			case OpIntersect, OpIntersectEq, OpEmptyCheck, OpSubsetCheck, OpIntersectCount:
				if err := resolvable(op.B, t); err != nil {
					return fmt.Errorf("oig: step %d op %d (%s): B: %v", t, i, op.Kind, err)
				}
			}
			switch op.Kind {
			case OpIntersectEq, OpEqCheck:
				if err := resolvable(op.Eq, t); err != nil {
					return fmt.Errorf("oig: step %d op %d (%s): Eq: %v", t, i, op.Kind, err)
				}
			}
			switch op.Kind {
			case OpIntersect, OpIntersectEq:
				if op.Out < 0 || op.Out >= p.NumSlots {
					return fmt.Errorf("oig: step %d op %d: out slot %d", t, i, op.Out)
				}
				written[op.Out] = true
			}
			switch op.Kind {
			case OpIntersect, OpIntersectCount:
				if op.Want != p.Sig.Size(op.Mask) {
					return fmt.Errorf("oig: step %d op %d: want %d != sig %d for mask %b",
						t, i, op.Want, p.Sig.Size(op.Mask), op.Mask)
				}
			}
			if op.Kind == OpIntersectCount && op.Out != -1 {
				return fmt.Errorf("oig: step %d op %d: count-only op has out slot %d", t, i, op.Out)
			}
			opByMask[op.Mask] = true
		}
	}

	// Coverage: walk every subset and demand it is checked or implied.
	return p.verifyCoverage(opByMask)
}

// verifyCoverage checks requirement 3: each subset's constraint is either
// directly checked, generation-implied, or class/zero-implied.
func (p *Plan) verifyCoverage(opByMask map[uint32]bool) error {
	m := p.Sig.M
	for mask := uint32(3); mask < 1<<m; mask++ {
		pc := bits.OnesCount32(mask)
		if pc < 2 {
			continue
		}
		if p.Sig.Size(mask) == 0 {
			if pc == 2 {
				continue // generation disconnection check
			}
			if p.impliedZero(mask) || opByMask[mask] {
				continue
			}
			return fmt.Errorf("oig: minimal empty subset %b has no emptiness check", mask)
		}
		if opByMask[mask] {
			continue
		}
		if p.Mode == ModeSimple {
			return fmt.Errorf("oig: simple plan misses non-empty subset %b", mask)
		}
		// Merged mode: the subset must be implied by its class — there must
		// exist a checked subset with the same pattern overlap size whose
		// union with mask stays inside the class (witnessed by a checked
		// subset of mask with equal overlap size). A subset S is implied iff
		// some checked (or single-edge) S' ⊆ S has sig[S'] == sig[S]: then
		// ∩S = ∩S' once the class equalities hold.
		implied := false
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if p.Sig.Size(sub) != p.Sig.Size(mask) {
				continue
			}
			if bits.OnesCount32(sub) == 1 || opByMask[sub] {
				implied = true
				break
			}
		}
		if !implied {
			return fmt.Errorf("oig: merged plan misses subset %b without class witness", mask)
		}
	}
	return nil
}
