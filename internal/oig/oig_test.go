package oig

import (
	"math/bits"
	"math/rand"
	"testing"

	"ohminer/internal/gen"
	"ohminer/internal/pattern"
)

// fig1Pattern is the running example (Figure 1(a)/Figure 8): pe1 and pe2
// have 6 vertices, pe3 has 8, with pe1∩pe2 == pe1∩pe3 (3 shared vertices)
// and |pe2∩pe3| = 5, |pe1∩pe2∩pe3| = 3.
func fig1Pattern(t *testing.T) *pattern.Pattern {
	t.Helper()
	return pattern.MustNew([][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
	}, nil)
}

func TestBuildGraphFig8(t *testing.T) {
	p := fig1Pattern(t)
	g := BuildGraph(p.Edges())
	if g.NumLevels() != 2 {
		// Level 1: three hyperedges. Level 2: o45 = pe1∩pe2 = pe1∩pe3
		// (merged) and o6 = pe2∩pe3. Level 3 of Figure 8 (o7 = o45 ∩ o6)
		// collapses here because o45 ⊆ o6 makes the derived mask a
		// subsumption, which Algorithm 1's merge removes; the plan still
		// validates the triple overlap through the class machinery.
		t.Logf("graph:\n%s", g)
	}
	if len(g.Levels[0]) != 3 {
		t.Fatalf("level 1 has %d nodes", len(g.Levels[0]))
	}
	if len(g.Levels) < 2 || len(g.Levels[1]) != 2 {
		t.Fatalf("level 2 wrong:\n%s", g)
	}
	// The merged node must carry two masks ({pe1,pe2} and {pe1,pe3}).
	var mergedFound bool
	for _, id := range g.Levels[1] {
		n := g.Nodes[id]
		if len(n.Set) == 3 {
			if len(n.Masks) != 2 {
				t.Fatalf("merged node has masks %v", n.Masks)
			}
			mergedFound = true
		}
	}
	if !mergedFound {
		t.Fatalf("no merged 3-vertex overlap node:\n%s", g)
	}
}

func TestOverlapOrderTopological(t *testing.T) {
	p := fig1Pattern(t)
	g := BuildGraph(p.Edges())
	order := g.OverlapOrder()
	pos := make(map[int]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	// Every node must come after both predecessors of each derivation.
	for _, n := range g.Nodes {
		for _, pr := range n.Preds {
			if pos[n.ID] < pos[pr[0]] || pos[n.ID] < pos[pr[1]] {
				t.Fatalf("node %d before its predecessors %v", n.ID, pr)
			}
		}
	}
}

func TestGroups(t *testing.T) {
	// The Figure 9 shape: 5 hyperedges where {0,1} and {2,3} form two
	// cliques joined through edge 4.
	p := pattern.MustNew([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{6, 7, 8},
		{7, 8, 9},
		{2, 3, 6, 7, 10},
	}, nil)
	g := BuildGraph(p.Edges())
	s := p.Signature()
	pairConn := func(i, j int) bool { return s.Size(uint32(1<<i|1<<j)) > 0 }
	groups := g.Groups(2, pairConn)
	if len(groups) < 2 {
		t.Fatalf("expected ≥2 groups at level 2, got %v\n%s", groups, g)
	}
}

func TestCompileFig1MergedPlan(t *testing.T) {
	p := fig1Pattern(t)
	plan := MustCompile(p, ModeMerged)
	if plan.Pattern.NumEdges() != 3 || len(plan.Steps) != 3 {
		t.Fatalf("steps: %d", len(plan.Steps))
	}
	// Matching order puts pe3 (most connected + largest) first; regardless,
	// the plan must contain exactly one OpIntersectEq (the merged overlap
	// equality, Table 1's "c5 == c4") and two size-checked intersections
	// ({pe1,pe2}-class rep and the {pe2,pe3} overlap). The {pe2,pe3} overlap
	// is read by nothing, so the dead-slot pass demotes it to count-only.
	ops := plan.NumOps()
	if ops[OpIntersectEq] != 1 {
		t.Fatalf("eq ops=%d want 1\n%s", ops[OpIntersectEq], plan)
	}
	if ops[OpIntersect] != 1 || ops[OpIntersectCount] != 1 {
		t.Fatalf("intersect ops=%d count-only=%d want 1/1\n%s", ops[OpIntersect], ops[OpIntersectCount], plan)
	}
	// Generation: step 0 unconstrained, steps 1,2 connected to all previous
	// (the pattern is a triangle of overlaps).
	for tt := 1; tt < 3; tt++ {
		if len(plan.Steps[tt].Conn) != tt || len(plan.Steps[tt].Disc) != 0 {
			t.Fatalf("step %d gen: conn=%v disc=%v", tt, plan.Steps[tt].Conn, plan.Steps[tt].Disc)
		}
	}
	if plan.CompileTime <= 0 {
		t.Fatal("CompileTime not recorded")
	}
	if plan.String() == "" {
		t.Fatal("empty plan rendering")
	}
}

func TestCompileSimpleChecksEverySubset(t *testing.T) {
	p := fig1Pattern(t)
	plan := MustCompile(p, ModeSimple)
	// All four ≥2-subsets are non-empty → 4 intersections, no eq/subset ops.
	// The triple overlap and one pair feed no later op, so two of the four
	// are count-only after the dead-slot pass.
	ops := plan.NumOps()
	if ops[OpIntersect]+ops[OpIntersectCount] != 4 || ops[OpIntersectEq] != 0 || ops[OpSubsetCheck] != 0 {
		t.Fatalf("ops=%v\n%s", ops, plan)
	}
	if ops[OpIntersectCount] == 0 {
		t.Fatalf("dead-slot pass demoted nothing: ops=%v\n%s", ops, plan)
	}
}

func TestCompileDisconnectedPairs(t *testing.T) {
	// A path: e0-e1-e2 where e0 and e2 do not overlap.
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil)
	plan := MustCompile(p, ModeMerged)
	discTotal := 0
	for _, st := range plan.Steps {
		discTotal += len(st.Disc)
	}
	if discTotal != 1 {
		t.Fatalf("disc checks=%d want 1\n%s", discTotal, plan)
	}
	// The empty triple {0,1,2} is implied by the empty pair — no
	// OpEmptyCheck.
	if n := plan.NumOps()[OpEmptyCheck]; n != 0 {
		t.Fatalf("empty checks=%d want 0", n)
	}
}

func TestCompileMinimalEmptyTriple(t *testing.T) {
	// Three pairwise-overlapping edges with an empty triple overlap: the
	// triangle. The triple must get an explicit OpEmptyCheck.
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}, {0, 2}}, nil)
	plan := MustCompile(p, ModeMerged)
	if n := plan.NumOps()[OpEmptyCheck]; n != 1 {
		t.Fatalf("empty checks=%d want 1\n%s", n, plan)
	}
	simple := MustCompile(p, ModeSimple)
	if n := simple.NumOps()[OpEmptyCheck]; n != 1 {
		t.Fatalf("simple empty checks=%d want 1\n%s", n, simple)
	}
}

func TestCompileNestedEdgeSubset(t *testing.T) {
	// pe1 ⊆ pe0: the pair {0,1} overlap equals pe1 itself, so the merged
	// plan replaces the pair's intersection with a subset check.
	p := pattern.MustNew([][]uint32{{0, 1, 2, 3}, {1, 2}}, nil)
	plan := MustCompile(p, ModeMerged)
	ops := plan.NumOps()
	if ops[OpSubsetCheck] != 1 || ops[OpIntersect] != 0 {
		t.Fatalf("ops=%v\n%s", ops, plan)
	}
}

// TestPlanOperandsResolvable validates structural invariants on random
// patterns: op operands must reference bound positions or already-written
// slots, and ops of step t must only touch positions ≤ t.
func TestPlanOperandsResolvable(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 150, NumEdges: 500,
		Communities: 8, MemberOverlap: 1.2, EdgeSizeMin: 3, EdgeSizeMax: 10, EdgeSizeMean: 6, Seed: 41})
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(4)
		p, err := pattern.Sample(h, m, 3, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeSimple, ModeMerged} {
			plan := MustCompile(p, mode)
			checkPlanInvariants(t, plan)
		}
	}
}

func checkPlanInvariants(t *testing.T, plan *Plan) {
	t.Helper()
	written := make([]bool, plan.NumSlots)
	resolvable := func(o Operand, step int) bool {
		if o.Edge {
			return o.Pos >= 0 && o.Pos <= step
		}
		return o.Pos >= 0 && o.Pos < plan.NumSlots && written[o.Pos]
	}
	for step, st := range plan.Steps {
		if st.Degree != plan.Pattern.Degree(step) {
			t.Fatalf("step %d degree mismatch", step)
		}
		for _, j := range append(append([]int{}, st.Conn...), st.Disc...) {
			if j < 0 || j >= step {
				t.Fatalf("step %d references position %d", step, j)
			}
		}
		for _, op := range st.Ops {
			if !resolvable(op.A, step) {
				t.Fatalf("step %d op %v: operand A unresolvable\n%s", step, op, plan)
			}
			switch op.Kind {
			case OpIntersect, OpIntersectEq, OpEmptyCheck, OpIntersectCount:
				if !resolvable(op.B, step) {
					t.Fatalf("step %d op %v: operand B unresolvable\n%s", step, op, plan)
				}
			}
			switch op.Kind {
			case OpIntersectEq, OpEqCheck:
				if !resolvable(op.Eq, step) {
					t.Fatalf("step %d op %v: operand Eq unresolvable\n%s", step, op, plan)
				}
			case OpSubsetCheck:
				if !op.B.Edge || op.B.Pos > step {
					t.Fatalf("step %d subset op B=%v", step, op.B)
				}
			}
			if op.Out >= 0 {
				if op.Out >= plan.NumSlots {
					t.Fatalf("slot %d out of range %d", op.Out, plan.NumSlots)
				}
				written[op.Out] = true
			}
			if (op.Kind == OpIntersect || op.Kind == OpIntersectCount) && op.Want <= 0 {
				t.Fatalf("%v with Want=%d", op.Kind, op.Want)
			}
			if op.Mask == 0 || maxBit(op.Mask) > step && op.Kind != OpSubsetCheck {
				t.Fatalf("step %d op mask %b", step, op.Mask)
			}
		}
	}
}

// TestMergedNeverChecksMore verifies the merge optimization only removes
// work: merged plans never emit more intersections than simple plans.
func TestMergedNeverChecksMore(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 100, NumEdges: 400,
		Communities: 5, MemberOverlap: 1.5, EdgeSizeMin: 3, EdgeSizeMax: 12, EdgeSizeMean: 7, Seed: 42})
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 40; trial++ {
		p, err := pattern.Sample(h, 2+rng.Intn(4), 3, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		simple := MustCompile(p, ModeSimple).NumOps()
		merged := MustCompile(p, ModeMerged).NumOps()
		sTotal := simple[OpIntersect] + simple[OpIntersectCount] + simple[OpIntersectEq]
		mTotal := merged[OpIntersect] + merged[OpIntersectCount] + merged[OpIntersectEq]
		if mTotal > sTotal {
			t.Fatalf("merged emits %d intersections vs simple %d for %s", mTotal, sTotal, p)
		}
	}
}

func TestProfileCounts(t *testing.T) {
	p := fig1Pattern(t)
	plan := MustCompile(p, ModeMerged)
	if len(plan.ProfileCounts) != 3 {
		t.Fatalf("profile prefixes: %d", len(plan.ProfileCounts))
	}
	// Prefix 0: every vertex of edge 0 has profile {0}.
	pc0 := plan.ProfileCounts[0]
	if pc0[1] != plan.Pattern.Degree(0) || len(pc0) != 1 {
		t.Fatalf("prefix-0 profiles: %v", pc0)
	}
	// Full prefix: total count = number of pattern vertices.
	total := 0
	for _, c := range plan.ProfileCounts[2] {
		total += c
	}
	if total != p.NumVertices() {
		t.Fatalf("full prefix counts %d vertices, want %d", total, p.NumVertices())
	}
}

func TestMasksByStepOrder(t *testing.T) {
	ms := masksByStep(3)
	if len(ms) != 7 {
		t.Fatalf("len=%d", len(ms))
	}
	// maxBit must be non-decreasing; within a step popcount non-decreasing.
	for i := 1; i < len(ms); i++ {
		ta, tb := maxBit(ms[i-1]), maxBit(ms[i])
		if tb < ta {
			t.Fatalf("order: %v", ms)
		}
		if tb == ta && bits.OnesCount32(ms[i]) < bits.OnesCount32(ms[i-1]) {
			t.Fatalf("popcount order: %v", ms)
		}
	}
}

func TestCompileSingleEdgePattern(t *testing.T) {
	p := pattern.MustNew([][]uint32{{0, 1, 2}}, nil)
	plan := MustCompile(p, ModeMerged)
	if len(plan.Steps) != 1 || len(plan.Steps[0].Ops) != 0 {
		t.Fatalf("single-edge plan: %s", plan)
	}
	if plan.Steps[0].Degree != 3 {
		t.Fatalf("degree=%d", plan.Steps[0].Degree)
	}
}

func TestCompileLabeled(t *testing.T) {
	p := pattern.MustNew([][]uint32{{0, 1, 2}, {1, 2, 3}}, []uint32{0, 1, 0, 1})
	plan := MustCompile(p, ModeMerged)
	if !plan.Labeled {
		t.Fatal("labeled flag lost")
	}
	if plan.Steps[0].EdgeLabels == nil || plan.Steps[1].EdgeLabels == nil {
		t.Fatal("EdgeLabels missing")
	}
	var found bool
	for _, st := range plan.Steps {
		for _, op := range st.Ops {
			if op.Kind == OpIntersect && op.LabelWant != nil {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no labeled intersect targets\n%s", plan)
	}
}
