package oig

import (
	"math/rand"
	"testing"

	"ohminer/internal/gen"
	"ohminer/internal/pattern"
)

// TestPlanDeterministic: compiling the same pattern twice yields
// structurally identical plans — required for reproducible experiment runs
// and for the engine's slot allocation.
func TestPlanDeterministic(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "d", NumVertices: 120, NumEdges: 500,
		Communities: 6, MemberOverlap: 1.4, EdgeSizeMin: 3, EdgeSizeMax: 10, EdgeSizeMean: 6, Seed: 23})
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		p, err := pattern.Sample(h, 2+rng.Intn(5), 2, 45, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeSimple, ModeMerged} {
			a := MustCompile(p, mode)
			b := MustCompile(p, mode)
			if a.String() != b.String() {
				t.Fatalf("trial %d mode %s: non-deterministic plans\n--- a ---\n%s--- b ---\n%s",
					trial, mode, a, b)
			}
			if a.NumSlots != b.NumSlots || len(a.Order) != len(b.Order) {
				t.Fatalf("trial %d: slot/order mismatch", trial)
			}
			for i := range a.Order {
				if a.Order[i] != b.Order[i] {
					t.Fatalf("trial %d: matching order differs", trial)
				}
			}
		}
	}
}

// TestModeStrings covers the enum renderings used in logs and tables.
func TestModeStrings(t *testing.T) {
	if ModeSimple.String() != "simple" || ModeMerged.String() != "merged" {
		t.Fatal("mode strings")
	}
	kinds := []OpKind{OpIntersect, OpIntersectEq, OpEmptyCheck, OpSubsetCheck, OpEqCheck, OpIntersectCount}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("op kind rendering %q", s)
		}
		seen[s] = true
	}
	if (Operand{Edge: true, Pos: 2}).String() != "c2" {
		t.Fatal("edge operand rendering")
	}
	if (Operand{Pos: 3}).String() != "s3" {
		t.Fatal("slot operand rendering")
	}
}
