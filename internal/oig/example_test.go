package oig_test

import (
	"fmt"

	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// ExampleCompile compiles the paper's Figure 1(a) pattern and prints the
// Table-1-style plan: two size-checked intersections (one demoted to a
// count-only check because nothing reads its output) plus one merged-node
// equality check.
func ExampleCompile() {
	p := pattern.MustNew([][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
	}, nil)
	plan, err := oig.Compile(p, oig.ModeMerged)
	if err != nil {
		panic(err)
	}
	ops := plan.NumOps()
	fmt.Println("steps:", len(plan.Steps))
	fmt.Println("intersections:", ops[oig.OpIntersect], "count-only:", ops[oig.OpIntersectCount], "equality checks:", ops[oig.OpIntersectEq])
	fmt.Println("verified:", oig.Verify(plan) == nil)
	// Output:
	// steps: 3
	// intersections: 1 count-only: 1 equality checks: 1
	// verified: true
}

// ExampleBuildGraph shows the OIG of a triangle of 2-vertex hyperedges:
// three hyperedges and three pairwise overlaps; the empty triple overlap is
// not a node (it becomes an emptiness check in the plan).
func ExampleBuildGraph() {
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}, {0, 2}}, nil)
	g := oig.BuildGraph(p.Edges())
	fmt.Println("levels:", g.NumLevels())
	fmt.Println("level-1 nodes:", len(g.Levels[0]), "level-2 nodes:", len(g.Levels[1]))
	// Output:
	// levels: 2
	// level-1 nodes: 3 level-2 nodes: 3
}
