// Package oig implements the redundancy-free compiler of Sec. 4.3.
//
// The compiler's front-end constructs the Overlap Intersection Graph (OIG)
// of a pattern (Algorithm 1): a DAG whose level-1 vertices are the pattern's
// hyperedges and whose deeper vertices are overlaps formed by intersecting
// two vertices of the previous level, with identical overlaps merged
// (MergeForUnique) so no intersection is ever computed twice. The middle-end
// derives the overlap order (a topological order consistent with the
// matching order) and the group-based pruning of empty overlaps; the
// back-end emits the overlap-centric execution plan (plan.go) that drives
// the mining engine.
package oig

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"ohminer/internal/intset"
)

// Node is one vertex of the OIG: a hyperedge (level 1) or an overlap.
type Node struct {
	ID    int
	Level int      // 1-based BFS level
	Set   []uint32 // pattern vertices of the hyperedge/overlap
	// Masks lists every hyperedge subset whose intersection equals Set and
	// that was derived for this node; Masks[0] is the canonical derivation.
	// Merged nodes (MergeForUnique) carry several masks.
	Masks []uint32
	// Preds holds the derivation pairs (IDs of the two parent nodes), one
	// per mask beyond level 1.
	Preds [][2]int
}

// Graph is the OIG of one pattern.
type Graph struct {
	Nodes  []*Node
	Levels [][]int // node IDs per level (index 0 = level 1)
	M      int     // number of pattern hyperedges
}

// BuildGraph constructs the OIG for the given hyperedges following
// Algorithm 1: level by level, intersect every overlapping pair of the
// current level's vertices, merging identical results in the next level.
func BuildGraph(edges [][]uint32) *Graph {
	g := &Graph{M: len(edges)}
	level := make([]int, 0, len(edges))
	for i, e := range edges {
		n := &Node{ID: len(g.Nodes), Level: 1, Set: e, Masks: []uint32{1 << i}}
		g.Nodes = append(g.Nodes, n)
		level = append(level, n.ID)
	}
	g.Levels = append(g.Levels, level)

	for len(level) > 1 {
		// byKey merges identical overlap sets within the next level.
		byKey := map[string]*Node{}
		var next []int
		for a := 0; a < len(level); a++ {
			for b := a + 1; b < len(level); b++ {
				na, nb := g.Nodes[level[a]], g.Nodes[level[b]]
				ov := intset.Intersect(na.Set, nb.Set, nil)
				if len(ov) == 0 {
					continue
				}
				mask := na.Masks[0] | nb.Masks[0]
				if mask == na.Masks[0] || mask == nb.Masks[0] {
					// One operand's hyperedge set subsumes the other's;
					// the "overlap" is an existing node's set re-derived.
					// Algorithm 1 still records it so the plan can reuse it,
					// but it must not spawn an identical node cascade.
					continue
				}
				key := setKey(ov)
				if n, ok := byKey[key]; ok {
					n.Masks = append(n.Masks, mask)
					n.Preds = append(n.Preds, [2]int{na.ID, nb.ID})
					continue
				}
				n := &Node{
					ID:    len(g.Nodes),
					Level: len(g.Levels) + 1,
					Set:   ov,
					Masks: []uint32{mask},
					Preds: [][2]int{{na.ID, nb.ID}},
				}
				g.Nodes = append(g.Nodes, n)
				byKey[key] = n
				next = append(next, n.ID)
			}
		}
		if len(next) == 0 {
			break
		}
		sort.Ints(next)
		g.Levels = append(g.Levels, next)
		level = next
	}
	return g
}

func setKey(s []uint32) string {
	b := make([]byte, 0, len(s)*4)
	for _, v := range s {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// NumLevels returns the OIG depth.
func (g *Graph) NumLevels() int { return len(g.Levels) }

// OverlapOrder returns the node IDs in overlap order for the identity
// matching order (Sec. 4.3.2): nodes are sorted by the step at which all
// the hyperedges they depend on are matched (the highest bit of their
// canonical mask), then by level, then by ID — a topological order of the
// OIG compatible with the matching order.
func (g *Graph) OverlapOrder() []int {
	ids := make([]int, len(g.Nodes))
	for i := range ids {
		ids[i] = i
	}
	// A merged node is ready only once every derivation's hyperedges are
	// matched (Figure 8 places o45 after both o4 and o5).
	step := func(n *Node) int {
		s := 0
		for _, mk := range n.Masks {
			if b := bits.Len32(mk) - 1; b > s {
				s = b
			}
		}
		return s
	}
	sort.SliceStable(ids, func(a, b int) bool {
		na, nb := g.Nodes[ids[a]], g.Nodes[ids[b]]
		if sa, sb := step(na), step(nb); sa != sb {
			return sa < sb
		}
		if na.Level != nb.Level {
			return na.Level < nb.Level
		}
		return na.ID < nb.ID
	})
	return ids
}

// Groups partitions the node IDs of one level into the connectivity groups
// of the group-based pruning (Sec. 4.3.2): two nodes share a group when
// every pair of hyperedges drawn from their combined canonical masks
// overlaps in the pattern. Disconnection checks are only needed within a
// group; across groups an empty overlap is implied by a level-1
// disconnection.
func (g *Graph) Groups(level int, pairConnected func(i, j int) bool) [][]int {
	ids := g.Levels[level-1]
	parent := make(map[int]int, len(ids))
	var find func(x int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, id := range ids {
		parent[id] = id
	}
	compatible := func(a, b *Node) bool {
		ma, mb := a.Masks[0], b.Masks[0]
		for i := 0; i < g.M; i++ {
			if ma&(1<<i) == 0 {
				continue
			}
			for j := 0; j < g.M; j++ {
				if mb&(1<<j) == 0 || i == j {
					continue
				}
				if !pairConnected(i, j) {
					return false
				}
			}
		}
		return true
	}
	for x := 0; x < len(ids); x++ {
		for y := x + 1; y < len(ids); y++ {
			if compatible(g.Nodes[ids[x]], g.Nodes[ids[y]]) {
				parent[find(ids[x])] = find(ids[y])
			}
		}
	}
	byRoot := map[int][]int{}
	for _, id := range ids {
		r := find(id)
		byRoot[r] = append(byRoot[r], id)
	}
	var roots []int
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		sort.Ints(byRoot[r])
		out = append(out, byRoot[r])
	}
	return out
}

// String renders the OIG level by level, in the style of Figure 8.
func (g *Graph) String() string {
	var b strings.Builder
	for li, ids := range g.Levels {
		fmt.Fprintf(&b, "level %d:", li+1)
		for _, id := range ids {
			n := g.Nodes[id]
			fmt.Fprintf(&b, " o%d%v", n.ID, n.Set)
			if len(n.Masks) > 1 {
				fmt.Fprintf(&b, "(merged×%d)", len(n.Masks))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
