package oig

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/bits"

	"ohminer/internal/sig"
)

// ErrInvalidPlan tags every program-verification failure reported by
// VerifyProgram so callers can distinguish a malformed plan from an I/O
// error with errors.Is.
var ErrInvalidPlan = errors.New("oig: invalid plan")

// Fingerprint hashes every plan field that affects the match count: the
// reordered pattern (edges, vertex labels, hyperedge labels), the matching
// order, the compile mode, the slot count, and each step's generation
// constraints, symmetry-breaking restrictions, and validation operations. Derived fields that are recomputed
// from these (Sig, LabelSig, ProfileCounts, Graph), pure diagnostics
// (CompileTime), and the per-op container hints (Op.Hint — performance
// advice the engine derives from DAL density statistics; every hint value
// computes the same result, and hashing it would make snapshots and cluster
// leases unresumable between builds with different hint policies or store
// densities) are excluded. Two plans with equal fingerprints direct the
// engine to the same computation; a snapshot or lease carrying a stale
// fingerprint is rejected before any candidate is counted.
func Fingerprint(p *Plan) uint64 {
	h := fnv.New64a()
	w := func(v uint64) {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	wi := func(v int) { w(uint64(int64(v))) }
	operand := func(o Operand) {
		if o.Edge {
			w(1)
		} else {
			w(0)
		}
		wi(o.Pos)
	}
	labels := func(lc []sig.LabelCount) {
		wi(len(lc))
		for _, c := range lc {
			w(uint64(c.Label))
			wi(c.Count)
		}
	}

	io.WriteString(h, p.Pattern.String())
	w(uint64(p.Mode))
	wi(p.NumSlots)
	if p.Labeled {
		w(1)
		for v := uint32(0); v < uint32(p.Pattern.NumVertices()); v++ {
			w(uint64(p.Pattern.Label(v)))
		}
	} else {
		w(0)
	}
	wi(len(p.Order))
	for _, o := range p.Order {
		wi(o)
	}
	wi(len(p.Steps))
	for _, st := range p.Steps {
		wi(st.Degree)
		wi(len(st.Conn))
		for _, j := range st.Conn {
			wi(j)
		}
		wi(len(st.Disc))
		for _, j := range st.Disc {
			wi(j)
		}
		// Symmetry-breaking restrictions change what one counted tuple means
		// (an orbit instead of an ordered embedding), so they are hashed by
		// content: a snapshot written by a restriction-less plan can never
		// resume onto a restricted one or vice versa, while asymmetric
		// patterns — whose restriction lists are empty either way — stay
		// interchangeable.
		wi(len(st.Restrict))
		for _, j := range st.Restrict {
			wi(j)
		}
		w(uint64(int64(st.EdgeLabel)))
		labels(st.EdgeLabels)
		wi(len(st.Ops))
		for _, op := range st.Ops {
			w(uint64(op.Kind))
			operand(op.A)
			operand(op.B)
			operand(op.Eq)
			wi(op.Out)
			wi(op.Want)
			w(uint64(op.Mask))
			labels(op.LabelWant)
		}
	}
	return h.Sum64()
}

// VerifyProgram validates a compiled plan as a program, layering semantic
// checks on top of the structural Verify pass:
//
//   - slot space: every operand slot index is inside [0, NumSlots) — a read
//     at or beyond NumSlots means the op still references a slot the
//     count-only pass demoted and compacted away;
//   - slot discipline: every slot is written, and first writes appear in
//     ascending slot order (the compaction invariant the engine's buffer
//     allocator relies on);
//   - liveness: every surviving OpIntersect without a label check has its
//     output read by a later operation — a dead materialization should have
//     been demoted to OpIntersectCount;
//   - mask/step discipline: each op runs at the step its subset becomes
//     computable (intersections exactly at maxBit(Mask); equality checks no
//     earlier than it; class-union subset checks may look ahead);
//   - fingerprint coverage: if the plan carries a compile-time fingerprint,
//     recomputing it over the current fields must match — any drift means a
//     field that affects counting was modified after compilation.
//
// Every failure wraps ErrInvalidPlan. The compiler runs this as a debug
// assertion, `ohmplan -verify` exposes it on the command line, and the
// checkpoint/lease load path runs it before resuming a snapshot.
func VerifyProgram(p *Plan) error {
	// Demoted/compacted slot reads first, with a dedicated diagnostic:
	// structural Verify would report them as generic range errors.
	for t := range p.Steps {
		for i, op := range p.Steps[t].Ops {
			for _, ref := range opSlotReads(op) {
				if ref.o.Pos >= p.NumSlots {
					return fmt.Errorf("%w: step %d op %d (%s): %s reads slot s%d beyond the plan's %d compacted slots (demoted or compacted output)",
						ErrInvalidPlan, t, i, op.Kind, ref.role, ref.o.Pos, p.NumSlots)
				}
			}
		}
	}

	if err := Verify(p); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidPlan, err)
	}

	// Slot discipline and liveness over the whole program.
	const never = int(^uint(0) >> 1)
	firstWrite := make([]int, p.NumSlots)
	lastRead := make([]int, p.NumSlots)
	readers := make([]int, p.NumSlots)
	for s := range firstWrite {
		firstWrite[s] = never
		lastRead[s] = -1
	}
	seq := 0
	type deadCand struct {
		step, op, out int
	}
	var dead []deadCand
	for t := range p.Steps {
		for i, op := range p.Steps[t].Ops {
			for _, ref := range opSlotReads(op) {
				lastRead[ref.o.Pos] = seq
				readers[ref.o.Pos]++
			}
			if op.Kind == OpIntersect || op.Kind == OpIntersectEq {
				if firstWrite[op.Out] == never {
					firstWrite[op.Out] = seq
				}
				if op.Kind == OpIntersect && op.LabelWant == nil {
					dead = append(dead, deadCand{t, i, op.Out})
				}
			}
			seq++
		}
	}
	prev := -1
	for s := 0; s < p.NumSlots; s++ {
		if firstWrite[s] == never {
			return fmt.Errorf("%w: slot s%d is never written (NumSlots %d overcounts the compacted slots)",
				ErrInvalidPlan, s, p.NumSlots)
		}
		if firstWrite[s] < prev {
			return fmt.Errorf("%w: slot s%d is first written before slot s%d (slots not numbered in first-write order)",
				ErrInvalidPlan, s, s-1)
		}
		prev = firstWrite[s]
	}
	for _, d := range dead {
		if readers[d.out] == 0 {
			return fmt.Errorf("%w: step %d op %d: intersection materializes slot s%d that no operation reads (should be demoted to intersect-count)",
				ErrInvalidPlan, d.step, d.op, d.out)
		}
	}

	// Mask/step discipline. Intersections and emptiness probes run exactly at
	// the step their newest hyperedge binds. Equality checks may be deferred
	// (merged mode replays a class check once its representative exists);
	// class-union subset checks carry a union mask that can extend beyond the
	// step they run at, so only mask sanity is enforced for them.
	m := p.Pattern.NumEdges()
	for t := range p.Steps {
		for i, op := range p.Steps[t].Ops {
			if op.Mask == 0 || bits.Len32(op.Mask) > m {
				return fmt.Errorf("%w: step %d op %d (%s): mask %b outside the pattern's %d hyperedges",
					ErrInvalidPlan, t, i, op.Kind, op.Mask, m)
			}
			switch op.Kind {
			case OpIntersect, OpIntersectCount, OpIntersectEq, OpEmptyCheck:
				if maxBit(op.Mask) != t {
					return fmt.Errorf("%w: step %d op %d (%s): mask %b becomes computable at step %d, not here",
						ErrInvalidPlan, t, i, op.Kind, op.Mask, maxBit(op.Mask))
				}
			case OpEqCheck:
				if maxBit(op.Mask) > t {
					return fmt.Errorf("%w: step %d op %d (eq): mask %b not yet computable at step %d",
						ErrInvalidPlan, t, i, op.Mask, t)
				}
			}
		}
	}

	// Symmetry-breaking restrictions: every entry must name a strictly
	// earlier position exactly once (sorted, so the check is deterministic);
	// an unrestricted plan must carry none; and a restricted plan's lists
	// must equal the stabilizer-chain derivation from its own pattern — a
	// drifted restriction set silently over- or under-counts, which is
	// exactly the class of corruption this verifier exists to refuse.
	anyRestrict := false
	for t := range p.Steps {
		prev := -1
		for _, j := range p.Steps[t].Restrict {
			if j < 0 || j >= t {
				return fmt.Errorf("%w: step %d: restriction references position %d, outside the bound prefix [0,%d)",
					ErrInvalidPlan, t, j, t)
			}
			if j <= prev {
				return fmt.Errorf("%w: step %d: restriction positions not strictly ascending (%d after %d)",
					ErrInvalidPlan, t, j, prev)
			}
			prev = j
			anyRestrict = true
		}
	}
	if anyRestrict != p.Restricted {
		return fmt.Errorf("%w: Restricted=%v but the steps carry restrictions=%v",
			ErrInvalidPlan, p.Restricted, anyRestrict)
	}
	if p.Restricted {
		want := p.Pattern.SymmetryRestrictions()
		for t := range p.Steps {
			got := p.Steps[t].Restrict
			if len(got) != len(want[t]) {
				return fmt.Errorf("%w: step %d: %d restrictions, the pattern's automorphism group derives %d",
					ErrInvalidPlan, t, len(got), len(want[t]))
			}
			for i := range got {
				if got[i] != want[t][i] {
					return fmt.Errorf("%w: step %d: restriction c%d<c%d does not match the derivation (want c%d<c%d)",
						ErrInvalidPlan, got[i], t, t, want[t][i], t)
				}
			}
		}
	}

	// Container hints: range-valid, and a bitmap hint must be satisfiable —
	// only Edge operands resolve through the DAL's container arena; slot
	// buffers are plain worker arrays, so a bitmap hint on a slots-only op
	// promises a representation no operand can have.
	for t := range p.Steps {
		for i, op := range p.Steps[t].Ops {
			if op.Hint > HintBitmap {
				return fmt.Errorf("%w: step %d op %d (%s): unknown container hint %d",
					ErrInvalidPlan, t, i, op.Kind, op.Hint)
			}
			if op.Hint == HintBitmap && !opReadsEdge(op) {
				return fmt.Errorf("%w: step %d op %d (%s): bitmap container hint on an op with no hyperedge operand (slots are array-only)",
					ErrInvalidPlan, t, i, op.Kind)
			}
		}
	}

	if p.FP != 0 {
		if got := Fingerprint(p); got != p.FP {
			return fmt.Errorf("%w: fingerprint %#x does not match compiled fingerprint %#x: a field that affects counting was modified after compilation",
				ErrInvalidPlan, got, p.FP)
		}
	}
	return nil
}

// opReadsEdge reports whether any operand op reads is a hyperedge vertex set
// (as opposed to a slot buffer).
func opReadsEdge(op Op) bool {
	if op.A.Edge {
		return true
	}
	switch op.Kind {
	case OpIntersect, OpIntersectEq, OpEmptyCheck, OpSubsetCheck, OpIntersectCount:
		if op.B.Edge {
			return true
		}
	}
	switch op.Kind {
	case OpIntersectEq, OpEqCheck:
		if op.Eq.Edge {
			return true
		}
	}
	return false
}

// slotRef names one slot-read operand of an op for diagnostics.
type slotRef struct {
	role string
	o    Operand
}

// opSlotReads returns the slot operands op reads (writes excluded).
func opSlotReads(op Op) []slotRef {
	var out []slotRef
	add := func(role string, o Operand) {
		if !o.Edge {
			out = append(out, slotRef{role, o})
		}
	}
	add("A", op.A)
	switch op.Kind {
	case OpIntersect, OpIntersectEq, OpEmptyCheck, OpSubsetCheck, OpIntersectCount:
		add("B", op.B)
	}
	switch op.Kind {
	case OpIntersectEq, OpEqCheck:
		add("Eq", op.Eq)
	}
	return out
}
